// Package dst is the deterministic fault-schedule explorer: a
// FoundationDB-style simulation-testing harness that drives the whole
// simulated ENCOMPASS cluster — CPU crashes, pair takeovers, bus
// failures, link faults and flaps, disc faults, and a seeded banking
// workload — from one root seed, then audits the run against the paper's
// invariants (Figure 3 lifecycle fidelity, atomicity, MAT agreement
// across nodes, no lost locks, no stuck transactions, mirror
// convergence, post-chaos liveness).
//
// One seed fully determines a Schedule (cluster shape, workload mix,
// fault-event list), so any failure reproduces from the command line:
//
//	go run ./cmd/dst -seed <seed> -v
//
// Failing schedules shrink via delta debugging (Minimize) to a minimal
// event list and land in internal/dst/corpus/, which the Replay tier-1
// test re-runs on every build.
package dst

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"encompass"
	"encompass/internal/audit"
	"encompass/internal/expand"
	"encompass/internal/hw"
	"encompass/internal/rollforward"
	"encompass/internal/tmf"
	"encompass/internal/txid"
	"encompass/internal/workload"
)

// Options tunes one schedule execution.
type Options struct {
	// Log, when non-nil, receives a step-by-step execution narrative.
	Log io.Writer
	// KeepSystem leaves the simulated cluster running after the verdict
	// (the default scuttles every CPU so the run's goroutines exit).
	KeepSystem bool
}

// CheckResult is one invariant checker's verdict.
type CheckResult struct {
	Name string `json:"name"`
	// Err is empty when the invariant held.
	Err string `json:"err,omitempty"`
}

// Verdict is the outcome of executing one schedule.
type Verdict struct {
	Seed      int64         `json:"seed"`
	Committed int           `json:"committed"`
	Aborted   int           `json:"aborted"`
	Voluntary int           `json:"voluntary_aborts"`
	Faults    int           `json:"faults_applied"`
	Checks    []CheckResult `json:"checks"`
}

// Failed reports whether any invariant checker failed.
func (v *Verdict) Failed() bool {
	for _, c := range v.Checks {
		if c.Err != "" {
			return true
		}
	}
	return false
}

// FirstFailure returns the first failed check, or nil.
func (v *Verdict) FirstFailure() *CheckResult {
	for i := range v.Checks {
		if v.Checks[i].Err != "" {
			return &v.Checks[i]
		}
	}
	return nil
}

// Summary renders the checker verdicts canonically: one "name=ok|FAIL"
// token per checker in fixed order. Determinism tests compare summaries
// across replays of the same seed.
func (v *Verdict) Summary() string {
	parts := make([]string, 0, len(v.Checks))
	for _, c := range v.Checks {
		if c.Err == "" {
			parts = append(parts, c.Name+"=ok")
		} else {
			parts = append(parts, c.Name+"=FAIL")
		}
	}
	return strings.Join(parts, " ")
}

// ReproCommand returns the exact CLI that replays this schedule.
func ReproCommand(s *Schedule) string {
	if s.Minimized {
		return "go run ./cmd/dst -replay <schedule.json>  # minimized; see corpus entry"
	}
	return fmt.Sprintf("go run ./cmd/dst -seed %d -v", s.Seed)
}

// Run executes the schedule against a freshly built cluster and returns
// the invariant verdicts. The execution is deterministic at step
// granularity: every fault event fires before the workload round its
// Step names, and all workload record content derives from the
// schedule's seeds.
func Run(s Schedule, opt Options) (*Verdict, error) {
	v, _, _, err := runKeep(s, opt)
	return v, err
}

// runKeep is Run plus access to the built cluster and workload, for tests
// and forensics that inspect post-run state. With opt.KeepSystem the
// caller owns the cluster and must Scuttle it.
func runKeep(s Schedule, opt Options) (*Verdict, *encompass.System, *workload.Bank, error) {
	logf := func(format string, args ...any) {
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, format+"\n", args...)
		}
	}
	spec := s.Spec
	cfg := encompass.Config{TraceCapacity: traceCapacity(&spec), CommitProtocol: spec.CommitProtocol}
	for i := 0; i < spec.Nodes; i++ {
		cfg.Nodes = append(cfg.Nodes, encompass.NodeSpec{
			Name: NodeName(i), CPUs: spec.CPUs,
			Volumes: []encompass.VolumeSpec{{Name: VolName(i), Audited: true, CacheSize: 256}},
		})
	}
	sys, err := encompass.Build(cfg)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dst: build cluster: %w", err)
	}
	if !opt.KeepSystem {
		defer Scuttle(sys)
	}

	placement := make([]workload.Placement, spec.Nodes)
	for i := range placement {
		placement[i] = workload.Placement{Node: NodeName(i), Volume: VolName(i)}
	}
	bank, err := workload.SetupBank(sys, workload.BankConfig{
		Placement:      placement,
		Branches:       spec.Branches,
		Tellers:        spec.Tellers,
		Accounts:       spec.Accounts,
		RemoteFraction: spec.RemotePct,
		HotAccounts:    spec.HotPct,
		MaxRetries:     40,
		Seed:           spec.WorkloadSeed,
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dst: setup bank: %w", err)
	}

	v := &Verdict{Seed: s.Seed}
	ap := NewApplier()
	next := 0 // next unapplied event
	for step := 0; step < spec.Steps; step++ {
		for next < len(s.Events) && s.Events[next].Step <= step {
			ev := s.Events[next]
			next++
			logf("  %s", ev)
			ap.Apply(sys, ev)
			if isFault(ev.Op) {
				v.Faults++
			}
		}
		c, a, vol := runRound(sys, bank, &spec, step, ap)
		v.Committed += c
		v.Aborted += a
		v.Voluntary += vol
		logf("step %d: %d committed, %d gave up, %d voluntary aborts", step, c, a, vol)
	}
	for ; next < len(s.Events); next++ {
		logf("  %s", s.Events[next])
		ap.Apply(sys, s.Events[next])
		if isFault(s.Events[next].Op) {
			v.Faults++
		}
	}
	ap.FinishOutages(sys)
	ap.DisarmHooks(sys)

	HealEverything(sys)
	OperatorSweep(sys)
	v.Checks = append([]CheckResult{{Name: "apply", Err: strings.Join(ap.Errs, "; ")}},
		runCheckers(sys, bank, &spec)...)
	if spec.CommitProtocol == tmf.ProtoPaxos {
		// The non-blocking claim, recorded by the phase-one kill hooks
		// while the coordinator was actually dead (not after the heal).
		v.Checks = append(v.Checks, CheckResult{Name: "nonblocking", Err: strings.Join(ap.NonBlockingErrs(), "; ")})
		logf("phase1-kill hooks fired on %d coordinator(s)", ap.NBKills())
	}
	logf("verdict: %s", v.Summary())
	return v, sys, bank, nil
}

// traceCapacity sizes each node's tracer so no trace is evicted: every
// attempt (including retries, bounded by MaxRetries=40) begins a fresh
// transid. The ceiling is generous — traces are small.
func traceCapacity(spec *Spec) int {
	n := spec.Nodes * spec.Steps * spec.TxPerStep * 48
	if n < 1<<15 {
		n = 1 << 15
	}
	return n
}

// runRound drives one workload round: every node originates TxPerStep
// transactions across Workers concurrent requesters. Record content is a
// pure function of (workload seed, node, step, worker), so reruns of the
// same schedule issue the same logical transactions in the same
// per-worker order.
func runRound(sys *encompass.System, bank *workload.Bank, spec *Spec, step int, ap *Applier) (committed, aborted, voluntary int) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	for ni := 0; ni < spec.Nodes; ni++ {
		node := NodeName(ni)
		if ap.Down(node) {
			// Requesters on a total-failed node do not run; the node's
			// down-ness is schedule-determined, so skipping is
			// deterministic.
			continue
		}
		per := spec.TxPerStep / spec.Workers
		extra := spec.TxPerStep % spec.Workers
		for w := 0; w < spec.Workers; w++ {
			n := per
			if w < extra {
				n++
			}
			if n == 0 {
				continue
			}
			wg.Add(1)
			go func(node string, w, n int) {
				defer wg.Done()
				label := fmt.Sprintf("round/%s/%d/%d", node, step, w)
				rng := rand.New(rand.NewSource(SubSeed(spec.WorkloadSeed, label)))
				for i := 0; i < n; i++ {
					if spec.AbortEvery > 0 && (i+1)%spec.AbortEvery == 0 {
						if bank.OneAbort(node, rng) == nil {
							mu.Lock()
							voluntary++
							mu.Unlock()
						}
						continue
					}
					_, err := bank.OneTx(node, rng)
					mu.Lock()
					if err != nil {
						aborted++
					} else {
						committed++
					}
					mu.Unlock()
				}
			}(node, w, n)
		}
	}
	wg.Wait()
	return
}

// isFault distinguishes fault events from their heals for the verdict's
// fault counter.
func isFault(op Op) bool {
	switch op {
	case OpCrashCPU, OpFailBus, OpFailLink, OpLinkFault, OpFailDrive, OpFailCtrl,
		OpPhase1Kill, OpPhase1Partition:
		return true
	}
	return false
}

// Applier executes schedule events against a running system, carrying
// the cross-event state the total-node-failure triple needs: the archive
// taken by OpArchive (consumed by OpRollforward) and which nodes are
// currently down in their entirety. Apply errors (a rollforward with no
// archive, a recovery that failed) are collected in Errs and surfaced as
// the run's "apply" check.
type Applier struct {
	archives map[string]*rollforward.Archive
	down     map[string]bool
	Errs     []string

	// nbMu guards the non-blocking audit trail written by OpPhase1Kill
	// hooks, which run on workload END goroutines.
	nbMu    sync.Mutex
	nbErrs  []string
	nbKills int
}

// NewApplier returns an empty applier for one schedule execution.
func NewApplier() *Applier {
	return &Applier{
		archives: make(map[string]*rollforward.Archive),
		down:     make(map[string]bool),
	}
}

// NonBlockingErrs returns the failures the phase-one kill hooks recorded:
// participants that stayed in doubt for the whole parked-coordinator
// window. Empty means every killed coordinator's participants resolved
// while it was dead (or no kill hook fired on a distributed transaction).
func (ap *Applier) NonBlockingErrs() []string {
	ap.nbMu.Lock()
	defer ap.nbMu.Unlock()
	return append([]string(nil), ap.nbErrs...)
}

// NBKills reports how many phase-one kill hooks actually crashed a
// coordinator mid-END (zero means the schedule's kill window saw only
// local-only transactions).
func (ap *Applier) NBKills() int {
	ap.nbMu.Lock()
	defer ap.nbMu.Unlock()
	return ap.nbKills
}

// Down reports whether the node is total-failed and not yet recovered.
func (ap *Applier) Down(node string) bool { return ap.down[node] }

// Apply performs one schedule event.
func (ap *Applier) Apply(sys *encompass.System, ev Event) {
	n := sys.Node(ev.Node)
	switch ev.Op {
	case OpArchive:
		ap.archives[ev.Node] = n.TakeArchive()
	case OpTotalFail:
		n.Crash()
		ap.down[ev.Node] = true
	case OpRollforward:
		a := ap.archives[ev.Node]
		if a == nil {
			ap.Errs = append(ap.Errs, fmt.Sprintf("%s: rollforward without archive", ev.Node))
			return
		}
		if !ap.down[ev.Node] {
			// Recovering a live node means total-failing it first; a
			// minimized schedule may have shed the explicit OpTotalFail.
			n.Crash()
		}
		if _, err := n.Recover(a); err != nil {
			ap.Errs = append(ap.Errs, fmt.Sprintf("%s: rollforward: %v", ev.Node, err))
			return
		}
		ap.down[ev.Node] = false
	case OpPhase1Kill:
		ap.armPhase1Kill(sys, ev)
	case OpPhase1Partition:
		ap.armPhase1Partition(sys, ev)
	default:
		Apply(sys, ev)
	}
}

// inDoubtAt reports whether node p currently lists tx among its in-doubt
// transactions (phase one acknowledged, disposition unknown).
func inDoubtAt(p *encompass.Node, tx txid.ID) bool {
	for _, id := range p.TMF.InDoubt() {
		if id == tx {
			return true
		}
	}
	return false
}

// armPhase1Kill installs the coordinator-kill hook on the node's Monitor.
// The hook fires between phase one and the commit record of an END on the
// node; it waits for an END whose transaction has remote in-doubt
// participants (a local-only END passes through), then — once — crashes
// the coordinator CPU and parks the END caller there, dead. While parked
// it polls the participants: under a non-blocking protocol they must all
// learn the disposition from the acceptor quorum within the window, and a
// participant still in doubt when the window closes is recorded as a
// "nonblocking" failure. The poll counts sleep ticks, not wall-clock, so
// the window is schedule-deterministic at step granularity.
func (ap *Applier) armPhase1Kill(sys *encompass.System, ev Event) {
	n := sys.Node(ev.Node)
	var fired atomic.Bool
	n.TMF.SetPhase1Hook(func(tx txid.ID) {
		if fired.Load() {
			return
		}
		var participants []*encompass.Node
		for _, p := range sys.Nodes() {
			if p.Name != ev.Node && inDoubtAt(p, tx) {
				participants = append(participants, p)
			}
		}
		if len(participants) == 0 {
			return // local-only END: keep the one-shot for a distributed one
		}
		if !fired.CompareAndSwap(false, true) {
			return
		}
		n.TMF.SetPhase1Hook(nil)
		n.HW.FailCPU(ev.Index)
		ap.nbMu.Lock()
		ap.nbKills++
		ap.nbMu.Unlock()
		for tick := 0; tick < 100; tick++ {
			blocked := 0
			for _, p := range participants {
				if inDoubtAt(p, tx) {
					blocked++
				}
			}
			if blocked == 0 {
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
		names := make([]string, len(participants))
		for i, p := range participants {
			names[i] = p.Name
		}
		ap.nbMu.Lock()
		ap.nbErrs = append(ap.nbErrs, fmt.Sprintf(
			"%s: participants %v still in doubt after the coordinator on %s stayed dead for the whole window",
			tx, names, ev.Node))
		ap.nbMu.Unlock()
	})
}

// armPhase1Partition installs the in-doubt-window partition hook: the
// next distributed END on the node has its Node-Peer link severed between
// phase one and the commit record — the exact window the paper's manual
// override discussion is about. The schedule's matching OpHealLink (or
// the end-of-run heal) restores it.
func (ap *Applier) armPhase1Partition(sys *encompass.System, ev Event) {
	n := sys.Node(ev.Node)
	var fired atomic.Bool
	n.TMF.SetPhase1Hook(func(tx txid.ID) {
		if fired.Load() {
			return
		}
		remote := false
		for _, p := range sys.Nodes() {
			if p.Name != ev.Node && inDoubtAt(p, tx) {
				remote = true
				break
			}
		}
		if !remote {
			return
		}
		if !fired.CompareAndSwap(false, true) {
			return
		}
		n.TMF.SetPhase1Hook(nil)
		sys.Network.FailLink(ev.Node, ev.Peer)
	})
}

// DisarmHooks clears any phase-boundary hook that never found a
// distributed transaction to fire on, so the post-run audit workload
// (the liveness check) cannot trip it.
func (ap *Applier) DisarmHooks(sys *encompass.System) {
	for _, n := range sys.Nodes() {
		n.TMF.SetPhase1Hook(nil)
	}
}

// FinishOutages recovers any node still down after the last event — a
// hand-edited or truncated schedule may end mid-outage; the invariant
// audit needs every node back.
func (ap *Applier) FinishOutages(sys *encompass.System) {
	nodes := make([]string, 0, len(ap.down))
	for name, d := range ap.down {
		if d {
			nodes = append(nodes, name)
		}
	}
	sort.Strings(nodes)
	for _, name := range nodes {
		ap.Apply(sys, Event{Op: OpRollforward, Node: name})
	}
}

// Apply performs one stateless schedule event against a running system.
// It is exported so the chaos tests can route their injectors through the
// same event vocabulary. The total-node-failure events carry state across
// events and must go through an Applier.
func Apply(sys *encompass.System, ev Event) {
	n := sys.Node(ev.Node)
	switch ev.Op {
	case OpArchive, OpTotalFail, OpRollforward, OpPhase1Kill, OpPhase1Partition:
		panic(fmt.Sprintf("dst: %s must be applied through an Applier", ev.Op))
	case OpCrashCPU:
		n.HW.FailCPU(ev.Index)
	case OpReviveCPU:
		n.HW.ReviveCPU(ev.Index)
	case OpFailBus:
		n.HW.FailBus(busOf(ev.Index))
	case OpReviveBus:
		n.HW.ReviveBus(busOf(ev.Index))
	case OpFailLink:
		sys.Network.FailLink(ev.Node, ev.Peer)
	case OpHealLink:
		sys.Network.HealLink(ev.Node, ev.Peer)
	case OpLinkFault:
		sys.Network.SetLinkFault(ev.Node, ev.Peer, *ev.Fault)
	case OpClearFault:
		sys.Network.SetLinkFault(ev.Node, ev.Peer, expand.FaultProfile{})
	case OpFailDrive:
		n.Volumes[ev.Vol].Disk.FailDrive(ev.Index)
	case OpReviveDrv:
		n.Volumes[ev.Vol].Disk.ReviveDrive(ev.Index)
	case OpFailCtrl:
		n.Volumes[ev.Vol].Disk.Controller(ev.Index).Fail()
	case OpReviveCtrl:
		n.Volumes[ev.Vol].Disk.Controller(ev.Index).Revive()
	}
}

// busOf maps an event index to the hardware bus identifier.
func busOf(i int) hw.BusID {
	if i == 0 {
		return hw.BusX
	}
	return hw.BusY
}

// HealEverything revives every CPU, bus, drive and controller, clears all
// link faults, and heals all links — the end-of-run repair crew that runs
// before the operator sweep and the invariant audit.
func HealEverything(sys *encompass.System) {
	sys.Network.ClearLinkFaults()
	sys.Heal()
	for _, n := range sys.Nodes() {
		for cpu := 0; cpu < n.HW.NumCPUs(); cpu++ {
			n.HW.ReviveCPU(cpu)
		}
		n.HW.ReviveBus(busOf(0))
		n.HW.ReviveBus(busOf(1))
		for _, vol := range volumesOf(n) {
			for d := 0; d < 2; d++ {
				if !vol.Disk.DriveUp(d) {
					vol.Disk.ReviveDrive(d)
				}
				vol.Disk.Controller(d).Revive()
			}
		}
	}
}

// Settle flushes every node's safe-delivery queue and waits for in-flight
// protocol traffic to drain.
func Settle(sys *encompass.System) {
	for _, n := range sys.Nodes() {
		n.TMF.FlushSafeQueue()
		n.TMF.WaitSafeQueueEmpty(2 * time.Second)
	}
	time.Sleep(200 * time.Millisecond)
}

// OperatorSweep resolves stragglers the way an operator would: abort live
// home transactions, then force each remaining participant to its home
// node's recorded disposition. The chaos tests and the DST runner share
// this end-of-run procedure.
func OperatorSweep(sys *encompass.System) {
	Settle(sys)
	for _, n := range sys.Nodes() {
		for _, id := range n.TMF.Tracer().Transactions() {
			if id.Home == n.Name && !n.TMF.State(id).Terminal() {
				n.TMF.Abort(id, "end-of-run sweep")
			}
		}
	}
	Settle(sys)
	for _, n := range sys.Nodes() {
		for _, id := range n.TMF.Tracer().Transactions() {
			if n.TMF.State(id).Terminal() {
				continue
			}
			o, ok := sys.Node(id.Home).TMF.Outcome(id)
			n.TMF.ForceDisposition(id, ok && o == audit.OutcomeCommitted)
		}
	}
	Settle(sys)
}

// Scuttle fails every CPU of every node, cancelling the process contexts
// so a finished run's goroutines exit. Soak mode executes thousands of
// schedules in one process; without this each cluster would leak its
// processes forever.
func Scuttle(sys *encompass.System) {
	for _, n := range sys.Nodes() {
		for cpu := 0; cpu < n.HW.NumCPUs(); cpu++ {
			n.HW.FailCPU(cpu)
		}
	}
}

// volumesOf returns the node's volumes in name order.
func volumesOf(n *encompass.Node) []*encompass.Volume {
	names := make([]string, 0, len(n.Volumes))
	for name := range n.Volumes {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*encompass.Volume, len(names))
	for i, name := range names {
		out[i] = n.Volumes[name]
	}
	return out
}
