package dst

import (
	"bytes"
	"testing"
)

// TestGenerateDeterministic: the schedule is a pure function of the root
// seed — same seed, byte-identical encoding. Repro commands and the
// corpus depend on this.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 2, 42, 7700, 123456789} {
		s1, s2 := Generate(seed), Generate(seed)
		a, b := s1.Encode(), s2.Encode()
		if !bytes.Equal(a, b) {
			t.Errorf("seed %d: two generations differ:\n%s\n--- vs ---\n%s", seed, a, b)
		}
	}
}

// TestGenerateDiverse: different seeds must explore different schedules —
// distinct fault-event lists and, across a spread of seeds, more than one
// cluster shape and every fault op in the vocabulary.
func TestGenerateDiverse(t *testing.T) {
	const n = 60
	encodings := make(map[string]int64, n)
	shapes := map[[2]int]bool{}
	ops := map[Op]bool{}
	for seed := int64(1); seed <= n; seed++ {
		s := Generate(seed)
		enc := string(s.Encode())
		if prev, dup := encodings[enc]; dup {
			t.Errorf("seeds %d and %d generated identical schedules", prev, seed)
		}
		encodings[enc] = seed
		shapes[[2]int{s.Spec.Nodes, s.Spec.CPUs}] = true
		for _, ev := range s.Events {
			ops[ev.Op] = true
		}
	}
	if len(shapes) < 2 {
		t.Errorf("%d seeds produced only %d cluster shape(s)", n, len(shapes))
	}
	for _, op := range []Op{OpCrashCPU, OpFailBus, OpFailLink, OpLinkFault, OpFailDrive, OpFailCtrl} {
		if !ops[op] {
			t.Errorf("%d seeds never scheduled %s — generator lost a fault class", n, op)
		}
	}
}

// TestGenerateWellFormed: every fault is paired with a heal at a later
// step, events are sorted by step, and event targets stay inside the
// generated cluster shape.
func TestGenerateWellFormed(t *testing.T) {
	heals := map[Op]Op{
		OpCrashCPU:  OpReviveCPU,
		OpFailBus:   OpReviveBus,
		OpFailLink:  OpHealLink,
		OpLinkFault: OpClearFault,
		OpFailDrive: OpReviveDrv,
		OpFailCtrl:  OpReviveCtrl,
	}
	for seed := int64(1); seed <= 40; seed++ {
		s := Generate(seed)
		for i := 1; i < len(s.Events); i++ {
			if s.Events[i-1].Step > s.Events[i].Step {
				t.Fatalf("seed %d: events out of step order at %d", seed, i)
			}
		}
		for i, ev := range s.Events {
			if !isFault(ev.Op) {
				continue
			}
			want := heals[ev.Op]
			found := false
			for _, later := range s.Events[i+1:] {
				if later.Op == want && later.Node == ev.Node && later.Peer == ev.Peer &&
					later.Index == ev.Index && later.Vol == ev.Vol && later.Step > ev.Step {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("seed %d: %s has no matching %s afterwards", seed, ev, want)
			}
		}
	}
}

// TestSubSeedIndependence: child seeds derived under different labels must
// differ from each other and from the root, and be stable per label.
func TestSubSeedIndependence(t *testing.T) {
	root := int64(99)
	a := SubSeed(root, "injector")
	b := SubSeed(root, "workload")
	if a == b {
		t.Error("different labels yielded the same child seed")
	}
	if a == root || b == root {
		t.Error("child seed equals the root seed")
	}
	if a != SubSeed(root, "injector") {
		t.Error("SubSeed is not stable for a fixed (root, label)")
	}
	if SubSeed(root+1, "injector") == a {
		t.Error("different roots yielded the same child seed")
	}
}
