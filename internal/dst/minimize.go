package dst

import (
	"fmt"
	"io"
)

// Minimize shrinks a failing schedule's event list by delta debugging
// (Zeller's ddmin): it repeatedly re-runs the schedule with subsets of
// its events, keeping any subset that still fails, until no single-chunk
// removal reproduces the failure. fails must return true when the
// candidate schedule still violates an invariant; maxRuns bounds the
// total number of executions (each one builds and drives a full cluster).
//
// The result carries Minimized=true: its event list is no longer the pure
// image of the seed, so repro happens from the serialized schedule (the
// corpus entry), not the seed alone.
//
// Heal events are retained alongside their faults automatically: removing
// a heal but keeping its fault is legal (the end-of-run repair crew heals
// everything), so ddmin operates on the raw event list.
func Minimize(s Schedule, fails func(Schedule) bool, maxRuns int, log io.Writer) Schedule {
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format+"\n", args...)
		}
	}
	runs := 0
	try := func(events []Event) bool {
		if runs >= maxRuns {
			return false
		}
		// Never consider a schedule that tears the outage protocol apart —
		// a total failure without its archive or without an eventual
		// ROLLFORWARD is not a bug reproduction, it is a different (and
		// trivially failing) scenario. Rejecting it without running keeps
		// ddmin honest and costs nothing.
		if !WellFormed(events) {
			return false
		}
		runs++
		cand := s
		cand.Minimized = true
		cand.Events = events
		return fails(cand)
	}

	events := append([]Event(nil), s.Events...)
	n := 2 // chunk granularity
	for len(events) > 1 && runs < maxRuns {
		chunk := (len(events) + n - 1) / n
		reduced := false
		for start := 0; start < len(events); start += chunk {
			end := start + chunk
			if end > len(events) {
				end = len(events)
			}
			// Complement: everything except events[start:end].
			cand := make([]Event, 0, len(events)-(end-start))
			cand = append(cand, events[:start]...)
			cand = append(cand, events[end:]...)
			if len(cand) == len(events) {
				continue
			}
			if try(cand) {
				logf("minimize: removed %d events, %d remain (%d runs)", end-start, len(cand), runs)
				events = cand
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(events) {
				break
			}
			n = min(n*2, len(events))
		}
	}
	logf("minimize: done after %d runs; %d of %d events remain", runs, len(events), len(s.Events))
	out := s
	out.Minimized = true
	out.Events = events
	return out
}
