package dst

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"encompass/internal/expand"
	"encompass/internal/tmf"
)

// Op names one fault-injection action in a schedule. Every fault Op has a
// matching heal Op; the generator always schedules the heal a bounded
// number of steps after the fault so no resource stays dark forever.
type Op string

// The fault-schedule vocabulary. CrashCPU with Index 0 is the "pair
// takeover" event: CPU 0 hosts the TMP primary and most pair primaries,
// so crashing it forces backups to take over mid-protocol.
const (
	OpCrashCPU   Op = "crash-cpu"
	OpReviveCPU  Op = "revive-cpu"
	OpFailBus    Op = "fail-bus"
	OpReviveBus  Op = "revive-bus"
	OpFailLink   Op = "fail-link"
	OpHealLink   Op = "heal-link"
	OpLinkFault  Op = "link-fault"
	OpClearFault Op = "clear-fault"
	OpFailDrive  Op = "fail-drive"
	OpReviveDrv  Op = "revive-drive"
	OpFailCtrl   Op = "fail-ctrl"
	OpReviveCtrl Op = "revive-ctrl"

	// The total-node-failure triple (claim 6). OpArchive takes a fuzzy
	// ROLLFORWARD archive of the node while transactions run; OpTotalFail
	// crashes every CPU at once, losing the unforced audit tails;
	// OpRollforward restores the archive and rolls the node forward,
	// negotiating ENDING transactions with its peers. The generator always
	// emits them as an ordered triple on one node — a schedule with a
	// total failure but no archive or no recovery is not well-formed (see
	// WellFormed), because the node could never rejoin the run.
	OpArchive     Op = "archive"
	OpTotalFail   Op = "total-fail"
	OpRollforward Op = "rollforward"

	// Phase-boundary fault points. Both arm a one-shot hook at the node's
	// Monitor that fires between phase one and the commit record of the
	// next distributed transaction END on that node — the paper's in-doubt
	// window. OpPhase1Kill crashes CPU Index (the TMP primary, i.e. the
	// commit coordinator) and parks the END caller there, dead, while the
	// participants must reach the disposition on their own; under Paxos
	// Commit the Applier records whether they did (the "nonblocking"
	// check). OpPhase1Partition severs the Node-Peer link at the boundary
	// instead, reproducing the in-doubt blocking window under any
	// protocol; the matching OpHealLink heals it.
	OpPhase1Kill      Op = "phase1-kill"
	OpPhase1Partition Op = "phase1-partition"
)

// Event is one scheduled fault or heal. Step is the workload round before
// which the event fires; events within a step apply in slice order.
type Event struct {
	Step  int    `json:"step"`
	Op    Op     `json:"op"`
	Node  string `json:"node,omitempty"`   // target node
	Peer  string `json:"peer,omitempty"`   // link peer (link events)
	Index int    `json:"index,omitempty"`  // CPU, bus, drive or controller
	Vol   string `json:"volume,omitempty"` // disc events
	// Fault carries the seeded per-link profile for OpLinkFault.
	Fault *expand.FaultProfile `json:"fault,omitempty"`
}

// String renders the event compactly for logs and repro reports.
func (e Event) String() string {
	switch e.Op {
	case OpFailLink, OpHealLink, OpClearFault, OpPhase1Partition:
		return fmt.Sprintf("@%d %s %s-%s", e.Step, e.Op, e.Node, e.Peer)
	case OpLinkFault:
		return fmt.Sprintf("@%d %s %s-%s loss=%.2f dup=%.2f reord=%.2f corr=%.2f seed=%d",
			e.Step, e.Op, e.Node, e.Peer, e.Fault.Loss, e.Fault.Duplicate, e.Fault.Reorder, e.Fault.Corrupt, e.Fault.Seed)
	case OpFailDrive, OpReviveDrv, OpFailCtrl, OpReviveCtrl:
		return fmt.Sprintf("@%d %s %s/%s[%d]", e.Step, e.Op, e.Node, e.Vol, e.Index)
	case OpArchive, OpTotalFail, OpRollforward:
		return fmt.Sprintf("@%d %s %s", e.Step, e.Op, e.Node)
	default:
		return fmt.Sprintf("@%d %s %s[%d]", e.Step, e.Op, e.Node, e.Index)
	}
}

// Spec is the cluster and workload shape of one schedule, derived from the
// root seed alongside the fault events.
type Spec struct {
	Nodes     int     `json:"nodes"`       // node count; names n0..n{Nodes-1}, line topology
	CPUs      int     `json:"cpus"`        // per node
	Steps     int     `json:"steps"`       // workload rounds
	TxPerStep int     `json:"tx_per_step"` // transactions per node per round
	Workers   int     `json:"workers"`     // concurrent requesters per node
	Branches  int     `json:"branches"`
	Tellers   int     `json:"tellers"`
	Accounts  int     `json:"accounts"`
	RemotePct float64 `json:"remote_fraction"`
	HotPct    float64 `json:"hot_fraction"`
	// AbortEvery runs one voluntary-abort transaction per this many
	// workload transactions (0 = none), keeping the backout path in the
	// explored mix.
	AbortEvery   int   `json:"abort_every"`
	WorkloadSeed int64 `json:"workload_seed"`
	// CommitProtocol selects the cluster's disposition protocol (empty =
	// the paper's abbreviated 2PC). The phase-boundary shapes set it; the
	// default shapes leave it empty so their schedules are unchanged.
	CommitProtocol string `json:"commit_protocol,omitempty"`
}

// Schedule is one complete deterministic test case: cluster shape, seeded
// workload, and the fault-event list. A schedule freshly produced by
// Generate is a pure function of Seed; a minimized schedule (Minimized
// true) carries an event subset that no longer regenerates from the seed
// and must be replayed from its serialized form.
type Schedule struct {
	Seed      int64   `json:"seed"`
	Minimized bool    `json:"minimized,omitempty"`
	Spec      Spec    `json:"spec"`
	Events    []Event `json:"events"`
}

// Encode renders the schedule canonically. Two schedules generated from
// the same seed encode byte-identically; the replay corpus and the
// determinism tests both rely on this.
func (s *Schedule) Encode() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic("dst: schedule encode: " + err.Error())
	}
	return append(b, '\n')
}

// DecodeSchedule parses a schedule previously produced by Encode.
func DecodeSchedule(b []byte) (Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(b, &s); err != nil {
		return Schedule{}, fmt.Errorf("dst: decode schedule: %w", err)
	}
	return s, nil
}

// NodeName returns the canonical name of node i in generated clusters.
func NodeName(i int) string { return fmt.Sprintf("n%d", i) }

// VolName returns the canonical volume name of node i in generated
// clusters (one audited volume per node).
func VolName(i int) string { return fmt.Sprintf("v%d", i) }

// SubSeed derives a named child seed from a root seed. The chaos tests
// route their injector and workload RNGs through this so one logged root
// seed reproduces every random stream in the test; the generator uses it
// for the workload and link-fault seeds. SplitMix64 over the root plus a
// label hash keeps the children statistically independent.
func SubSeed(root int64, label string) int64 {
	z := uint64(root)
	for _, c := range label {
		z = (z ^ uint64(c)) * 0x100000001b3
	}
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// genState tracks resource availability while generating, so the schedule
// never stacks unrecoverable faults: at most one CPU, one bus, one drive
// and one controller down per node/volume at a time, and a faulted or
// downed link is left alone until healed. (Double mirror failure is total
// media loss — that is ROLLFORWARD's department, not the explorer's.)
type genState struct {
	cpuUpAt  map[string]int // node -> step the crashed CPU revives
	busUpAt  map[string]int
	drvUpAt  map[string]int
	ctlUpAt  map[string]int
	linkUpAt map[string]int // "a-b" -> step the link heals / fault clears
}

// Shape selects a family of schedules to generate. All shapes derive the
// cluster, workload and ordinary fault stream identically from the seed;
// shapes differ only in whether the total-node-failure triple is woven
// in (its plan comes from an independent sub-seeded stream).
type Shape string

// The schedule shapes.
const (
	// ShapeMixed is the default exploration mix: roughly one schedule in
	// four carries a total-node-failure outage on top of the ordinary
	// fault stream.
	ShapeMixed Shape = "mixed"
	// ShapeTotalFailure puts the archive → total failure → ROLLFORWARD
	// triple in every schedule — the nightly soak shape for claim 6.
	ShapeTotalFailure Shape = "total-failure"
	// ShapeCoordKill runs the cluster under Paxos Commit and kills the
	// commit coordinator (the TMP primary CPU) at the phase-one boundary
	// of a distributed transaction, parking the END caller: the
	// participants must reach the disposition through the acceptor quorum
	// alone, audited by the "nonblocking" check.
	ShapeCoordKill Shape = "coord-kill"
	// ShapePhasePartition severs a link exactly at the phase-one boundary
	// — the paper's in-doubt window — under a seed-rotated disposition
	// protocol, so every protocol's in-doubt handling gets explored.
	ShapePhasePartition Shape = "phase-partition"
)

// ParseShape validates a shape name from the CLI.
func ParseShape(s string) (Shape, error) {
	switch Shape(s) {
	case ShapeMixed, ShapeTotalFailure, ShapeCoordKill, ShapePhasePartition:
		return Shape(s), nil
	default:
		return "", fmt.Errorf("dst: unknown schedule shape %q (want mixed, total-failure, coord-kill or phase-partition)", s)
	}
}

// Generate derives a complete schedule from one root seed. Same seed,
// same schedule, byte for byte; different seeds vary the cluster shape,
// workload mix, and fault composition.
func Generate(seed int64) Schedule { return GenerateShaped(seed, ShapeMixed) }

// GenerateShaped is Generate with an explicit schedule shape.
func GenerateShaped(seed int64, shape Shape) Schedule {
	rng := rand.New(rand.NewSource(seed))
	spec := Spec{
		Nodes:        2 + rng.Intn(2),
		CPUs:         3 + rng.Intn(2),
		Steps:        8 + rng.Intn(5),
		TxPerStep:    6 + rng.Intn(5),
		Workers:      2 + rng.Intn(2),
		Branches:     3 + rng.Intn(3),
		Tellers:      3,
		Accounts:     30 + rng.Intn(20),
		RemotePct:    0.15 + 0.25*rng.Float64(),
		HotPct:       0,
		AbortEvery:   0,
		WorkloadSeed: SubSeed(seed, "workload"),
	}
	if rng.Intn(3) == 0 {
		spec.HotPct = 0.1 + 0.2*rng.Float64()
	}
	if rng.Intn(2) == 0 {
		spec.AbortEvery = 5 + rng.Intn(6)
	}

	st := genState{
		cpuUpAt:  map[string]int{},
		busUpAt:  map[string]int{},
		drvUpAt:  map[string]int{},
		ctlUpAt:  map[string]int{},
		linkUpAt: map[string]int{},
	}
	var events, outage []Event

	// Phase-boundary plan, drawn from its own sub-seeded stream. The
	// coord-kill shape reserves the victim node's CPUs for the whole run
	// (a second CPU loss on the home node could legitimately break the
	// 2F+1 acceptor quorum) and its adjacent links (a severed link is a
	// reachability failure Paxos Commit does not promise to mask), so a
	// "nonblocking" failure always means a protocol bug.
	var phaseEvents []Event
	if shape == ShapeCoordKill || shape == ShapePhasePartition {
		phRng := rand.New(rand.NewSource(SubSeed(seed, "phase-boundary")))
		step := 1 + phRng.Intn(spec.Steps-3)
		switch shape {
		case ShapeCoordKill:
			spec.CommitProtocol = tmf.ProtoPaxos
			node := NodeName(phRng.Intn(spec.Nodes))
			st.cpuUpAt[node] = spec.Steps + 1
			for i := 0; i < spec.Nodes-1; i++ {
				a, b := NodeName(i), NodeName(i+1)
				if a == node || b == node {
					st.linkUpAt[a+"-"+b] = spec.Steps + 1
				}
			}
			phaseEvents = []Event{
				{Step: step, Op: OpPhase1Kill, Node: node, Index: 0},
				{Step: step + 2, Op: OpReviveCPU, Node: node, Index: 0},
			}
		case ShapePhasePartition:
			protos := []string{tmf.ProtoAbbreviated, tmf.ProtoFull2PC, tmf.ProtoPaxos}
			spec.CommitProtocol = protos[phRng.Intn(len(protos))]
			li := phRng.Intn(spec.Nodes - 1)
			a, b := NodeName(li), NodeName(li+1)
			healAt := step + 1 + phRng.Intn(2)
			st.linkUpAt[a+"-"+b] = healAt
			phaseEvents = []Event{
				{Step: step, Op: OpPhase1Partition, Node: a, Peer: b},
				{Step: healAt, Op: OpHealLink, Node: a, Peer: b},
			}
		}
	}

	// Total-node-failure plan, drawn from its own sub-seeded stream so the
	// ordinary fault stream of a seed is identical across shapes. The
	// phase-boundary shapes skip the outage: a total failure of the kill
	// victim would retire the acceptor quorum the shape is auditing.
	outRng := rand.New(rand.NewSource(SubSeed(seed, "outage")))
	if shape == ShapeTotalFailure || (shape == ShapeMixed && outRng.Intn(4) == 0) {
		third := spec.Steps / 3
		if third < 1 {
			third = 1
		}
		node := NodeName(outRng.Intn(spec.Nodes))
		archStep := 1 + outRng.Intn(third)
		failStep := archStep + 1 + outRng.Intn(third)
		if failStep > spec.Steps-2 {
			failStep = spec.Steps - 2
		}
		recoverStep := failStep + 1
		// Reserve the node for the outage: no ordinary fault touches its
		// CPUs, buses, discs, or adjacent links until it has recovered, so
		// the ROLLFORWARD peer negotiation always has a path to try.
		busy := recoverStep + 1
		st.cpuUpAt[node], st.busUpAt[node] = busy, busy
		st.drvUpAt[node], st.ctlUpAt[node] = busy, busy
		for i := 0; i < spec.Nodes-1; i++ {
			a, b := NodeName(i), NodeName(i+1)
			if a == node || b == node {
				st.linkUpAt[a+"-"+b] = busy
			}
		}
		outage = []Event{
			{Step: archStep, Op: OpArchive, Node: node},
			{Step: failStep, Op: OpTotalFail, Node: node},
			{Step: recoverStep, Op: OpRollforward, Node: node},
		}
	}

	for step := 0; step < spec.Steps; step++ {
		n := 0
		switch d := rng.Intn(10); {
		case d < 3: // quiet round
		case d < 8:
			n = 1
		default:
			n = 2
		}
		for i := 0; i < n; i++ {
			events = append(events, genFault(rng, &spec, &st, step)...)
		}
	}
	// The outage triple goes last in slice order so same-step heals from
	// the ordinary stream apply before the ROLLFORWARD fires.
	events = append(events, phaseEvents...)
	events = append(events, outage...)
	// Stable by step: heals scheduled earlier sort before same-step
	// faults, so a resource healed at step s can legally re-fault at s.
	sort.SliceStable(events, func(i, j int) bool { return events[i].Step < events[j].Step })
	return Schedule{Seed: seed, Spec: spec, Events: events}
}

// WellFormed reports whether the event list keeps every total-failure
// outage recoverable: each OpTotalFail must be preceded by an OpArchive
// of the same node and followed by an OpRollforward of it, and each
// OpRollforward needs a preceding OpArchive. The minimizer only explores
// well-formed candidates — dropping a recovery but keeping the failure
// "fails" every invariant for the dull reason that the node never came
// back.
func WellFormed(events []Event) bool {
	archived := map[string]bool{}
	needRecovery := map[string]bool{}
	for _, ev := range events {
		switch ev.Op {
		case OpArchive:
			archived[ev.Node] = true
		case OpTotalFail:
			if !archived[ev.Node] {
				return false
			}
			needRecovery[ev.Node] = true
		case OpRollforward:
			if !archived[ev.Node] {
				return false
			}
			delete(needRecovery, ev.Node)
		}
	}
	return len(needRecovery) == 0
}

// genFault draws one fault (plus its scheduled heal) if the drawn target
// is available; an unavailable target yields no events but still consumes
// the same RNG draws, keeping generation deterministic.
func genFault(rng *rand.Rand, spec *Spec, st *genState, step int) []Event {
	healAt := step + 1 + rng.Intn(3)
	node := NodeName(rng.Intn(spec.Nodes))
	kind := rng.Intn(100)
	switch {
	case kind < 30: // CPU crash; index 0 = TMP/pair-primary takeover
		cpu := rng.Intn(spec.CPUs)
		if st.cpuUpAt[node] > step {
			return nil
		}
		st.cpuUpAt[node] = healAt
		return []Event{
			{Step: step, Op: OpCrashCPU, Node: node, Index: cpu},
			{Step: healAt, Op: OpReviveCPU, Node: node, Index: cpu},
		}
	case kind < 40: // one interprocessor bus
		bus := rng.Intn(2)
		if st.busUpAt[node] > step {
			return nil
		}
		st.busUpAt[node] = healAt
		return []Event{
			{Step: step, Op: OpFailBus, Node: node, Index: bus},
			{Step: healAt, Op: OpReviveBus, Node: node, Index: bus},
		}
	case kind < 55: // link down (line topology: node i links to i+1)
		li := rng.Intn(spec.Nodes - 1)
		a, b := NodeName(li), NodeName(li+1)
		lk := a + "-" + b
		if st.linkUpAt[lk] > step {
			return nil
		}
		st.linkUpAt[lk] = healAt
		return []Event{
			{Step: step, Op: OpFailLink, Node: a, Peer: b},
			{Step: healAt, Op: OpHealLink, Node: a, Peer: b},
		}
	case kind < 70: // lossy/duplicating/reordering/corrupting line
		li := rng.Intn(spec.Nodes - 1)
		a, b := NodeName(li), NodeName(li+1)
		lk := a + "-" + b
		p := &expand.FaultProfile{
			Loss:      0.05 + 0.10*rng.Float64(),
			Duplicate: 0.05 * rng.Float64(),
			Reorder:   0.3 * rng.Float64(),
			Corrupt:   0.03 * rng.Float64(),
			JitterMax: time.Duration(1+rng.Intn(2)) * time.Millisecond,
			Seed:      rng.Int63(),
		}
		if st.linkUpAt[lk] > step {
			return nil
		}
		st.linkUpAt[lk] = healAt
		return []Event{
			{Step: step, Op: OpLinkFault, Node: a, Peer: b, Fault: p},
			{Step: healAt, Op: OpClearFault, Node: a, Peer: b},
		}
	case kind < 85: // one mirror drive
		drive := rng.Intn(2)
		vol := volOn(spec, node)
		if st.drvUpAt[node] > step {
			return nil
		}
		st.drvUpAt[node] = healAt
		return []Event{
			{Step: step, Op: OpFailDrive, Node: node, Vol: vol, Index: drive},
			{Step: healAt, Op: OpReviveDrv, Node: node, Vol: vol, Index: drive},
		}
	default: // one disc controller
		ctl := rng.Intn(2)
		vol := volOn(spec, node)
		if st.ctlUpAt[node] > step {
			return nil
		}
		st.ctlUpAt[node] = healAt
		return []Event{
			{Step: step, Op: OpFailCtrl, Node: node, Vol: vol, Index: ctl},
			{Step: healAt, Op: OpReviveCtrl, Node: node, Vol: vol, Index: ctl},
		}
	}
}

// volOn returns the volume name hosted on node ("nI" -> "vI").
func volOn(spec *Spec, node string) string {
	for i := 0; i < spec.Nodes; i++ {
		if NodeName(i) == node {
			return VolName(i)
		}
	}
	return VolName(0)
}
