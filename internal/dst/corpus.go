package dst

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// marshalEntry/unmarshalEntry keep the corpus files in one canonical
// shape (indented JSON with a trailing newline).
func marshalEntry(e *CorpusEntry) ([]byte, error) {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func unmarshalEntry(b []byte) (CorpusEntry, error) {
	var e CorpusEntry
	err := json.Unmarshal(b, &e)
	return e, err
}

// CorpusEntry is one checked-in regression schedule: a seed that once
// violated an invariant, usually minimized, with a one-line description
// of the bug it caught. The tier-1 Replay test re-runs every entry.
type CorpusEntry struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Schedule    Schedule `json:"schedule"`
}

// SaveCorpusEntry writes the entry to dir/<name>.json in the canonical
// encoding.
func SaveCorpusEntry(dir string, e CorpusEntry) error {
	if e.Name == "" {
		return fmt.Errorf("dst: corpus entry needs a name")
	}
	if strings.ContainsAny(e.Name, "/\\ ") {
		return fmt.Errorf("dst: corpus entry name %q must be a bare filename", e.Name)
	}
	b, err := marshalEntry(&e)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, e.Name+".json"), b, 0o644)
}

// DecodeAny parses either a corpus entry or a bare schedule document,
// returning the schedule — the replay CLI accepts both.
func DecodeAny(b []byte) (Schedule, error) {
	if e, err := unmarshalEntry(b); err == nil && (e.Schedule.Spec.Nodes > 0) {
		return e.Schedule, nil
	}
	s, err := DecodeSchedule(b)
	if err != nil {
		return Schedule{}, err
	}
	if s.Spec.Nodes == 0 {
		return Schedule{}, fmt.Errorf("dst: document is neither a corpus entry nor a schedule")
	}
	return s, nil
}

// LoadCorpus reads every *.json entry under dir, sorted by filename. A
// missing directory is an empty corpus, not an error.
func LoadCorpus(dir string) ([]CorpusEntry, error) {
	des, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".json") {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	var out []CorpusEntry
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		e, err := unmarshalEntry(b)
		if err != nil {
			return nil, fmt.Errorf("dst: corpus %s: %w", name, err)
		}
		if e.Name == "" {
			e.Name = strings.TrimSuffix(name, ".json")
		}
		out = append(out, e)
	}
	return out, nil
}
