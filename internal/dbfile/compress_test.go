package dbfile

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompressKeysRoundTrip(t *testing.T) {
	keys := []string{"acct-0001", "acct-0002", "acct-0003", "acct-1000", "branch-x"}
	got, err := DecompressKeys(CompressKeys(keys))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("len = %d, want %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Errorf("key %d = %q, want %q", i, got[i], keys[i])
		}
	}
}

func TestCompressEmpty(t *testing.T) {
	got, err := DecompressKeys(CompressKeys(nil))
	if err != nil || len(got) != 0 {
		t.Errorf("empty round trip = %v, %v", got, err)
	}
	recs, err := DecompressRecords(CompressRecords(nil))
	if err != nil || len(recs) != 0 {
		t.Errorf("empty records = %v, %v", recs, err)
	}
}

func TestCompressRecordsRoundTripQuick(t *testing.T) {
	prop := func(seed []string) bool {
		// Build sorted unique keys with values.
		set := make(map[string]bool)
		for _, s := range seed {
			set[s] = true
		}
		keys := make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		recs := make([]Rec, len(keys))
		for i, k := range keys {
			recs[i] = Rec{Key: k, Val: []byte("v:" + k)}
		}
		got, err := DecompressRecords(CompressRecords(recs))
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i].Key != recs[i].Key || string(got[i].Val) != string(recs[i].Val) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompressionActuallyCompresses(t *testing.T) {
	// Keys with long shared prefixes, the key-sequenced common case.
	var recs []Rec
	for i := 0; i < 1000; i++ {
		recs = append(recs, Rec{
			Key: fmt.Sprintf("customer-account-%06d", i),
			Val: []byte("x"),
		})
	}
	ratio := CompressionRatio(recs)
	if ratio >= 0.7 {
		t.Errorf("compression ratio = %.2f, want < 0.7 for shared-prefix keys", ratio)
	}
}

func TestDecompressCorrupt(t *testing.T) {
	good := CompressRecords([]Rec{{Key: "abc", Val: []byte("defgh")}})
	for cut := 1; cut < len(good); cut++ {
		if _, err := DecompressRecords(good[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
	if _, err := DecompressKeys([]byte{0xff}); err == nil {
		t.Error("garbage keys block not detected")
	}
}
