// LRU record cache ("a cache buffering scheme designed to keep the most
// recently referenced blocks of data in main memory", feature 6 of the
// ENCOMPASS data base manager). The DISCPROCESS consults the cache before
// paying the simulated disc-read cost.
package dbfile

import (
	"container/list"
	"sync"
)

// CacheStats counts cache activity.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRatio returns hits/(hits+misses), or 0 with no traffic.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type cacheEntry struct {
	key string
	val []byte
}

// Cache is a fixed-capacity LRU cache of records keyed by "file\x00key".
// It is safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	items    map[string]*list.Element
	stats    CacheStats
}

// NewCache creates a cache holding up to capacity records; capacity <= 0
// disables caching (every lookup misses).
func NewCache(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}
}

// CacheKey builds a cache key from file and record key.
func CacheKey(file, key string) string { return file + "\x00" + key }

// Get returns the cached value and whether it was present.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity <= 0 {
		c.stats.Misses++
		return nil, false
	}
	el, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	c.stats.Hits++
	return el.Value.(*cacheEntry).val, true
}

// Put stores a value, evicting the least recently used record if full.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		back := c.order.Back()
		if back != nil {
			c.order.Remove(back)
			delete(c.items, back.Value.(*cacheEntry).key)
			c.stats.Evictions++
		}
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
}

// Invalidate drops one record.
func (c *Cache) Invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.Remove(el)
		delete(c.items, key)
	}
}

// Len returns the number of cached records.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
