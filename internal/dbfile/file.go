// File organizations of the ENCOMPASS data base manager: "three types of
// structured file organizations: key-sequenced, relative, and
// entry-sequenced" with "multi-key access to records with automatic
// maintenance of the indices during file update".
//
// All three organizations share a B-tree primary index whose keys are
// strings; relative and entry-sequenced files use zero-padded decimal
// record numbers so lexicographic order equals record order. Alternate-key
// indices map an extracted field value (plus the primary key, to permit
// duplicates) back to the primary key.
package dbfile

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
)

// Organization selects a file structure.
type Organization int

// The three ENCOMPASS file organizations.
const (
	KeySequenced Organization = iota
	Relative
	EntrySequenced
)

// String names the file organization.
func (o Organization) String() string {
	switch o {
	case KeySequenced:
		return "key-sequenced"
	case Relative:
		return "relative"
	case EntrySequenced:
		return "entry-sequenced"
	default:
		return fmt.Sprintf("organization(%d)", int(o))
	}
}

// Errors reported by file operations.
var (
	ErrDuplicateKey  = errors.New("dbfile: duplicate primary key")
	ErrNotFound      = errors.New("dbfile: record not found")
	ErrWrongOrg      = errors.New("dbfile: operation invalid for this file organization")
	ErrBadAltKey     = errors.New("dbfile: alternate key field out of record bounds")
	ErrNoSuchAltKey  = errors.New("dbfile: no such alternate key")
	ErrUpdateEntrySq = errors.New("dbfile: entry-sequenced records cannot be deleted")
)

// recNumWidth is the zero-padded width of relative/entry-sequenced record
// numbers (keeps lexicographic order = numeric order).
const recNumWidth = 12

// FormatRecNum renders a record number as a primary key.
func FormatRecNum(n uint64) string {
	return fmt.Sprintf("%0*d", recNumWidth, n)
}

// ParseRecNum parses a record-number key.
func ParseRecNum(key string) (uint64, error) {
	return strconv.ParseUint(key, 10, 64)
}

// AltKeyDef describes an alternate key as a fixed field of the record
// value, the way ENCOMPASS's data definition language carves records into
// fields.
type AltKeyDef struct {
	Name   string
	Offset int
	Len    int
}

func (d AltKeyDef) extract(val []byte) (string, error) {
	if d.Offset < 0 || d.Len <= 0 || d.Offset+d.Len > len(val) {
		return "", fmt.Errorf("%w: %s [%d:%d] of %d-byte record", ErrBadAltKey, d.Name, d.Offset, d.Offset+d.Len, len(val))
	}
	return string(val[d.Offset : d.Offset+d.Len]), nil
}

// File is one structured file. It is safe for concurrent use.
type File struct {
	name string
	org  Organization

	mu      sync.RWMutex
	primary *Tree
	altDefs []AltKeyDef
	altIdx  map[string]*Tree // alt name -> (altValue \x00 primaryKey) -> primaryKey
	nextRec uint64           // entry-sequenced allocator
}

// NewFile creates an empty file with the given organization and alternate
// keys.
func NewFile(name string, org Organization, altKeys ...AltKeyDef) *File {
	f := &File{
		name:    name,
		org:     org,
		primary: NewTree(),
		altDefs: altKeys,
		altIdx:  make(map[string]*Tree),
	}
	for _, d := range altKeys {
		f.altIdx[d.Name] = NewTree()
	}
	return f
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Org returns the file organization.
func (f *File) Org() Organization { return f.org }

// Len returns the number of records.
func (f *File) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.primary.Len()
}

// AltKeys returns the alternate key definitions.
func (f *File) AltKeys() []AltKeyDef {
	return append([]AltKeyDef(nil), f.altDefs...)
}

func altEntry(altVal, primary string) string { return altVal + "\x00" + primary }

func (f *File) indexInsert(primary string, val []byte) error {
	for _, d := range f.altDefs {
		av, err := d.extract(val)
		if err != nil {
			return err
		}
		f.altIdx[d.Name].Put(altEntry(av, primary), []byte(primary))
	}
	return nil
}

func (f *File) indexRemove(primary string, val []byte) {
	for _, d := range f.altDefs {
		if av, err := d.extract(val); err == nil {
			f.altIdx[d.Name].Delete(altEntry(av, primary))
		}
	}
}

// Insert adds a record under a caller-supplied key (key-sequenced and
// relative organizations). For entry-sequenced files use Append.
func (f *File) Insert(key string, val []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.org == EntrySequenced {
		return fmt.Errorf("%w: Insert on %s file %s", ErrWrongOrg, f.org, f.name)
	}
	if f.primary.Has(key) {
		return fmt.Errorf("%w: %s in %s", ErrDuplicateKey, key, f.name)
	}
	cp := cloneBytes(val)
	if err := f.indexInsert(key, cp); err != nil {
		return err
	}
	f.primary.Put(key, cp)
	return nil
}

// PeekAppendKey returns the key the next Append to an entry-sequenced file
// would allocate, without mutating the file. Callers that must route the
// actual write through another channel (the DISCPROCESS checkpoint
// discipline uses ForceWrite) use this to name the record first.
func (f *File) PeekAppendKey() (string, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.org != EntrySequenced {
		return "", fmt.Errorf("%w: PeekAppendKey on %s file %s", ErrWrongOrg, f.org, f.name)
	}
	return FormatRecNum(f.nextRec), nil
}

// Append adds a record to an entry-sequenced file and returns its key.
func (f *File) Append(val []byte) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.org != EntrySequenced {
		return "", fmt.Errorf("%w: Append on %s file %s", ErrWrongOrg, f.org, f.name)
	}
	key := FormatRecNum(f.nextRec)
	f.nextRec++
	cp := cloneBytes(val)
	if err := f.indexInsert(key, cp); err != nil {
		return "", err
	}
	f.primary.Put(key, cp)
	return key, nil
}

// Read fetches a record by primary key.
func (f *File) Read(key string) ([]byte, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	v, ok := f.primary.Get(key)
	if !ok {
		return nil, fmt.Errorf("%w: %s in %s", ErrNotFound, key, f.name)
	}
	return cloneBytes(v), nil
}

// Exists reports whether a primary key is present.
func (f *File) Exists(key string) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.primary.Has(key)
}

// Update replaces an existing record, maintaining alternate indices.
func (f *File) Update(key string, val []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	old, ok := f.primary.Get(key)
	if !ok {
		return fmt.Errorf("%w: %s in %s", ErrNotFound, key, f.name)
	}
	cp := cloneBytes(val)
	// Validate alternate key extraction before touching any index so a bad
	// record leaves the file unchanged.
	for _, d := range f.altDefs {
		if _, err := d.extract(cp); err != nil {
			return err
		}
	}
	f.indexRemove(key, old)
	if err := f.indexInsert(key, cp); err != nil {
		return err
	}
	f.primary.Put(key, cp)
	return nil
}

// Delete removes a record. Entry-sequenced files are append-only.
func (f *File) Delete(key string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.org == EntrySequenced {
		return fmt.Errorf("%w: %s", ErrUpdateEntrySq, f.name)
	}
	old, ok := f.primary.Get(key)
	if !ok {
		return fmt.Errorf("%w: %s in %s", ErrNotFound, key, f.name)
	}
	f.indexRemove(key, old)
	f.primary.Delete(key)
	return nil
}

// ForceWrite installs a record regardless of prior existence; used by
// transaction backout and ROLLFORWARD replay, which must be idempotent.
func (f *File) ForceWrite(key string, val []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if old, ok := f.primary.Get(key); ok {
		f.indexRemove(key, old)
	}
	cp := cloneBytes(val)
	_ = f.indexInsert(key, cp)
	f.primary.Put(key, cp)
	if f.org == EntrySequenced {
		if n, err := ParseRecNum(key); err == nil && n >= f.nextRec {
			f.nextRec = n + 1
		}
	}
}

// ForceDelete removes a record regardless of organization or existence;
// used by backout/replay.
func (f *File) ForceDelete(key string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if old, ok := f.primary.Get(key); ok {
		f.indexRemove(key, old)
		f.primary.Delete(key)
	}
}

// Rec is a key/value pair returned by scans.
type Rec struct {
	Key string
	Val []byte
}

// ReadRange returns up to limit records with keys in [lo, hi) in key
// order. hi == "" means unbounded; limit <= 0 means no limit.
func (f *File) ReadRange(lo, hi string, limit int) []Rec {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []Rec
	f.primary.AscendRange(lo, hi, func(k string, v []byte) bool {
		out = append(out, Rec{Key: k, Val: cloneBytes(v)})
		return limit <= 0 || len(out) < limit
	})
	return out
}

// ReadRangeDesc returns up to limit records with keys in [lo, hi) in
// REVERSE key order (reading a file backwards from an approximate
// position, as key-sequenced access methods allow).
func (f *File) ReadRangeDesc(lo, hi string, limit int) []Rec {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []Rec
	f.primary.DescendRange(lo, hi, func(k string, v []byte) bool {
		out = append(out, Rec{Key: k, Val: cloneBytes(v)})
		return limit <= 0 || len(out) < limit
	})
	return out
}

// ReadByAltKey returns the records whose alternate key field equals value,
// in primary-key order.
func (f *File) ReadByAltKey(altName, value string) ([]Rec, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	idx, ok := f.altIdx[altName]
	if !ok {
		return nil, fmt.Errorf("%w: %s on %s", ErrNoSuchAltKey, altName, f.name)
	}
	var out []Rec
	lo := value + "\x00"
	hi := value + "\x01"
	idx.AscendRange(lo, hi, func(_ string, primary []byte) bool {
		if v, ok := f.primary.Get(string(primary)); ok {
			out = append(out, Rec{Key: string(primary), Val: cloneBytes(v)})
		}
		return true
	})
	return out, nil
}

// Keys returns all primary keys in order.
func (f *File) Keys() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.primary.Keys()
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
