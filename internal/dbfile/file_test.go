package dbfile

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestKeySequencedCRUD(t *testing.T) {
	f := NewFile("accounts", KeySequenced)
	if err := f.Insert("100", []byte("alice")); err != nil {
		t.Fatal(err)
	}
	if err := f.Insert("100", []byte("dup")); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("dup insert err = %v, want ErrDuplicateKey", err)
	}
	v, err := f.Read("100")
	if err != nil || string(v) != "alice" {
		t.Fatalf("Read = %q, %v", v, err)
	}
	if err := f.Update("100", []byte("alice2")); err != nil {
		t.Fatal(err)
	}
	if v, _ := f.Read("100"); string(v) != "alice2" {
		t.Errorf("after update = %q", v)
	}
	if err := f.Update("999", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("update absent err = %v, want ErrNotFound", err)
	}
	if err := f.Delete("100"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read("100"); !errors.Is(err, ErrNotFound) {
		t.Errorf("read after delete err = %v, want ErrNotFound", err)
	}
	if err := f.Delete("100"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v, want ErrNotFound", err)
	}
}

func TestEntrySequencedAppendOnly(t *testing.T) {
	f := NewFile("history", EntrySequenced)
	k1, err := f.Append([]byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	k2, err := f.Append([]byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	if k1 >= k2 {
		t.Errorf("entry keys not increasing: %q >= %q", k1, k2)
	}
	if err := f.Insert("x", nil); !errors.Is(err, ErrWrongOrg) {
		t.Errorf("Insert on entry-sequenced err = %v, want ErrWrongOrg", err)
	}
	if err := f.Delete(k1); !errors.Is(err, ErrUpdateEntrySq) {
		t.Errorf("Delete on entry-sequenced err = %v, want ErrUpdateEntrySq", err)
	}
	// Updates are allowed (e.g. flag fields), appends keep numbering after
	// ForceWrite replay.
	if err := f.Update(k1, []byte("first-upd")); err != nil {
		t.Fatal(err)
	}
	f.ForceWrite(FormatRecNum(50), []byte("replayed"))
	k3, _ := f.Append([]byte("third"))
	if n, _ := ParseRecNum(k3); n != 51 {
		t.Errorf("append after replay got record %d, want 51", n)
	}
}

func TestRelativeFile(t *testing.T) {
	f := NewFile("slots", Relative)
	if err := f.Insert(FormatRecNum(7), []byte("seven")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append(nil); !errors.Is(err, ErrWrongOrg) {
		t.Errorf("Append on relative err = %v, want ErrWrongOrg", err)
	}
	v, err := f.Read(FormatRecNum(7))
	if err != nil || string(v) != "seven" {
		t.Errorf("Read = %q, %v", v, err)
	}
}

func TestAlternateKeyMaintenance(t *testing.T) {
	// Record layout: branch (3 bytes) + name (5 bytes).
	branch := AltKeyDef{Name: "branch", Offset: 0, Len: 3}
	f := NewFile("accts", KeySequenced, branch)
	f.Insert("a1", []byte("NYCalice"))
	f.Insert("a2", []byte("SFObobby"))
	f.Insert("a3", []byte("NYCcarol"))

	recs, err := f.ReadByAltKey("branch", "NYC")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Key != "a1" || recs[1].Key != "a3" {
		t.Fatalf("NYC records = %+v", recs)
	}

	// Update moves a record between alternate key values.
	if err := f.Update("a1", []byte("SFOalice")); err != nil {
		t.Fatal(err)
	}
	recs, _ = f.ReadByAltKey("branch", "NYC")
	if len(recs) != 1 || recs[0].Key != "a3" {
		t.Errorf("NYC after move = %+v", recs)
	}
	recs, _ = f.ReadByAltKey("branch", "SFO")
	if len(recs) != 2 {
		t.Errorf("SFO after move = %+v", recs)
	}

	// Update that keeps the alt value must keep exactly one index entry.
	if err := f.Update("a2", []byte("SFObobb2")); err != nil {
		t.Fatal(err)
	}
	recs, _ = f.ReadByAltKey("branch", "SFO")
	if len(recs) != 2 {
		t.Errorf("SFO after same-value update = %+v", recs)
	}

	// Delete removes index entries.
	f.Delete("a2")
	recs, _ = f.ReadByAltKey("branch", "SFO")
	if len(recs) != 1 || recs[0].Key != "a1" {
		t.Errorf("SFO after delete = %+v", recs)
	}

	if _, err := f.ReadByAltKey("nope", "x"); !errors.Is(err, ErrNoSuchAltKey) {
		t.Errorf("unknown alt key err = %v", err)
	}
}

func TestAltKeyTooShortRecord(t *testing.T) {
	f := NewFile("f", KeySequenced, AltKeyDef{Name: "k", Offset: 0, Len: 10})
	if err := f.Insert("a", []byte("short")); !errors.Is(err, ErrBadAltKey) {
		t.Errorf("err = %v, want ErrBadAltKey", err)
	}
	// Failed insert must not leave the record behind.
	if f.Exists("a") {
		t.Error("record present after failed insert")
	}
	// Failed update must leave the old record intact.
	f2 := NewFile("f2", KeySequenced, AltKeyDef{Name: "k", Offset: 0, Len: 3})
	f2.Insert("a", []byte("abcdef"))
	if err := f2.Update("a", []byte("x")); !errors.Is(err, ErrBadAltKey) {
		t.Fatalf("err = %v", err)
	}
	v, _ := f2.Read("a")
	if string(v) != "abcdef" {
		t.Errorf("record corrupted by failed update: %q", v)
	}
	if recs, _ := f2.ReadByAltKey("k", "abc"); len(recs) != 1 {
		t.Errorf("index corrupted by failed update: %+v", recs)
	}
}

func TestReadRange(t *testing.T) {
	f := NewFile("f", KeySequenced)
	for i := 0; i < 20; i++ {
		f.Insert(fmt.Sprintf("k%02d", i), []byte{byte(i)})
	}
	recs := f.ReadRange("k05", "k10", 0)
	if len(recs) != 5 || recs[0].Key != "k05" || recs[4].Key != "k09" {
		t.Errorf("range = %+v", recs)
	}
	recs = f.ReadRange("", "", 3)
	if len(recs) != 3 {
		t.Errorf("limited range len = %d", len(recs))
	}
}

func TestForceWriteDelete(t *testing.T) {
	f := NewFile("f", KeySequenced, AltKeyDef{Name: "p", Offset: 0, Len: 1})
	f.ForceWrite("k", []byte("Xv"))
	if v, _ := f.Read("k"); string(v) != "Xv" {
		t.Error("ForceWrite did not install")
	}
	f.ForceWrite("k", []byte("Yw"))
	recs, _ := f.ReadByAltKey("p", "Y")
	if len(recs) != 1 {
		t.Errorf("alt index after force rewrite = %+v", recs)
	}
	if recs, _ := f.ReadByAltKey("p", "X"); len(recs) != 0 {
		t.Errorf("stale alt entry survived: %+v", recs)
	}
	f.ForceDelete("k")
	if f.Exists("k") {
		t.Error("record exists after ForceDelete")
	}
	f.ForceDelete("k") // idempotent
}

func TestReadReturnsCopy(t *testing.T) {
	f := NewFile("f", KeySequenced)
	f.Insert("k", []byte("abc"))
	v, _ := f.Read("k")
	v[0] = 'Z'
	v2, _ := f.Read("k")
	if string(v2) != "abc" {
		t.Error("Read exposed internal storage")
	}
}

func TestRecNumRoundTripQuick(t *testing.T) {
	prop := func(n uint64) bool {
		n = n % 1e12
		got, err := ParseRecNum(FormatRecNum(n))
		return err == nil && got == n
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestOrganizationString(t *testing.T) {
	if KeySequenced.String() != "key-sequenced" || Relative.String() != "relative" || EntrySequenced.String() != "entry-sequenced" {
		t.Error("organization strings wrong")
	}
}
