package dbfile

import (
	"fmt"
	"testing"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(2)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache hit")
	}
	c.Put("a", []byte("1"))
	v, ok := c.Get("a")
	if !ok || string(v) != "1" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRatio() != 0.5 {
		t.Errorf("HitRatio = %f", st.HitRatio())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Get("a") // a is now most recently used
	c.Put("c", []byte("3"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should be evicted (LRU)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should survive")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be present")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestCacheUpdateInPlace(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("1"))
	c.Put("a", []byte("2"))
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	v, _ := c.Get("a")
	if string(v) != "2" {
		t.Errorf("value = %q", v)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(4)
	c.Put("a", []byte("1"))
	c.Invalidate("a")
	if _, ok := c.Get("a"); ok {
		t.Error("invalidated entry still present")
	}
	c.Invalidate("absent") // no panic
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Put("a", []byte("1"))
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Error("disabled cache stored data")
	}
}

func TestCacheKeyFormat(t *testing.T) {
	if CacheKey("f", "k") == CacheKey("fk", "") {
		t.Error("cache keys must be unambiguous")
	}
}

func TestCacheHitRatioRisesWithCapacity(t *testing.T) {
	// Zipf-ish access pattern: small cache misses more than large cache.
	run := func(capacity int) float64 {
		c := NewCache(capacity)
		for i := 0; i < 10000; i++ {
			key := fmt.Sprintf("k%d", i%100)
			if _, ok := c.Get(key); !ok {
				c.Put(key, []byte("v"))
			}
		}
		return c.Stats().HitRatio()
	}
	small, large := run(10), run(100)
	if large <= small {
		t.Errorf("hit ratio: capacity 100 = %.3f should exceed capacity 10 = %.3f", large, small)
	}
}
