// Data and index compression ("data and index compression", feature 3 of
// the ENCOMPASS data base manager). Key runs are prefix-compressed the way
// key-sequenced blocks were on disc: each key after the first is encoded as
// (shared-prefix length, suffix). The codec is used when serializing file
// contents for archives and for the cache's block-size accounting.
package dbfile

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrCorruptBlock reports an undecodable compressed block.
var ErrCorruptBlock = errors.New("dbfile: corrupt compressed block")

// CompressKeys prefix-compresses an ordered run of keys.
func CompressKeys(keys []string) []byte {
	var out []byte
	prev := ""
	out = binary.AppendUvarint(out, uint64(len(keys)))
	for _, k := range keys {
		shared := sharedPrefixLen(prev, k)
		out = binary.AppendUvarint(out, uint64(shared))
		out = binary.AppendUvarint(out, uint64(len(k)-shared))
		out = append(out, k[shared:]...)
		prev = k
	}
	return out
}

// DecompressKeys reverses CompressKeys.
func DecompressKeys(b []byte) ([]string, error) {
	n, off, err := readUvarint(b, 0)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, n)
	prev := ""
	for i := uint64(0); i < n; i++ {
		var shared, suffix uint64
		shared, off, err = readUvarint(b, off)
		if err != nil {
			return nil, err
		}
		suffix, off, err = readUvarint(b, off)
		if err != nil {
			return nil, err
		}
		if shared > uint64(len(prev)) || off+int(suffix) > len(b) {
			return nil, ErrCorruptBlock
		}
		k := prev[:shared] + string(b[off:off+int(suffix)])
		off += int(suffix)
		keys = append(keys, k)
		prev = k
	}
	return keys, nil
}

func sharedPrefixLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

func readUvarint(b []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return 0, 0, ErrCorruptBlock
	}
	return v, off + n, nil
}

// CompressRecords serializes an ordered run of records with
// prefix-compressed keys and length-prefixed values.
func CompressRecords(recs []Rec) []byte {
	keys := make([]string, len(recs))
	for i, r := range recs {
		keys[i] = r.Key
	}
	out := CompressKeys(keys)
	for _, r := range recs {
		out = binary.AppendUvarint(out, uint64(len(r.Val)))
		out = append(out, r.Val...)
	}
	return out
}

// DecompressRecords reverses CompressRecords.
func DecompressRecords(b []byte) ([]Rec, error) {
	n, off, err := readUvarint(b, 0)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, n)
	prev := ""
	for i := uint64(0); i < n; i++ {
		var shared, suffix uint64
		shared, off, err = readUvarint(b, off)
		if err != nil {
			return nil, err
		}
		suffix, off, err = readUvarint(b, off)
		if err != nil {
			return nil, err
		}
		if shared > uint64(len(prev)) || off+int(suffix) > len(b) {
			return nil, ErrCorruptBlock
		}
		k := prev[:shared] + string(b[off:off+int(suffix)])
		off += int(suffix)
		keys = append(keys, k)
		prev = k
	}
	recs := make([]Rec, 0, n)
	for i := uint64(0); i < n; i++ {
		var vlen uint64
		vlen, off, err = readUvarint(b, off)
		if err != nil {
			return nil, err
		}
		if off+int(vlen) > len(b) {
			return nil, ErrCorruptBlock
		}
		val := make([]byte, vlen)
		copy(val, b[off:off+int(vlen)])
		off += int(vlen)
		recs = append(recs, Rec{Key: keys[i], Val: val})
	}
	if off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptBlock, len(b)-off)
	}
	return recs, nil
}

// CompressionRatio reports compressed/uncompressed size for a run of
// records (1.0 = no gain; smaller is better).
func CompressionRatio(recs []Rec) float64 {
	raw := 0
	for _, r := range recs {
		raw += len(r.Key) + len(r.Val)
	}
	if raw == 0 {
		return 1
	}
	return float64(len(CompressRecords(recs))) / float64(raw)
}
