package dbfile

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTreeBasicOps(t *testing.T) {
	tr := NewTree()
	if tr.Len() != 0 {
		t.Fatal("fresh tree not empty")
	}
	if !tr.Put("b", []byte("2")) {
		t.Error("insert should report new key")
	}
	if tr.Put("b", []byte("22")) {
		t.Error("replace should not report new key")
	}
	v, ok := tr.Get("b")
	if !ok || string(v) != "22" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	if _, ok := tr.Get("zz"); ok {
		t.Error("Get of absent key returned ok")
	}
	if !tr.Delete("b") {
		t.Error("delete should report presence")
	}
	if tr.Delete("b") {
		t.Error("double delete should report absence")
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after deleting everything", tr.Len())
	}
}

func TestTreeOrderedIteration(t *testing.T) {
	tr := NewTree()
	perm := rand.New(rand.NewSource(1)).Perm(500)
	for _, i := range perm {
		tr.Put(fmt.Sprintf("k%04d", i), []byte{byte(i)})
	}
	keys := tr.Keys()
	if len(keys) != 500 {
		t.Fatalf("Len = %d, want 500", len(keys))
	}
	if !sort.StringsAreSorted(keys) {
		t.Error("keys not in order")
	}
	if s := tr.checkInvariants(); s != "" {
		t.Errorf("invariant violated: %s", s)
	}
	if tr.depth() < 2 {
		t.Error("500 keys should exceed one node")
	}
}

func TestTreeRangeScan(t *testing.T) {
	tr := NewTree()
	for i := 0; i < 100; i++ {
		tr.Put(fmt.Sprintf("k%03d", i), nil)
	}
	var got []string
	tr.AscendRange("k010", "k015", func(k string, _ []byte) bool {
		got = append(got, k)
		return true
	})
	want := []string{"k010", "k011", "k012", "k013", "k014"}
	if len(got) != len(want) {
		t.Fatalf("range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range = %v, want %v", got, want)
		}
	}
	// Unbounded hi.
	count := 0
	tr.AscendRange("k095", "", func(string, []byte) bool { count++; return true })
	if count != 5 {
		t.Errorf("unbounded scan = %d, want 5", count)
	}
	// Early stop.
	count = 0
	tr.AscendRange("", "", func(string, []byte) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("early-stop scan = %d, want 3", count)
	}
}

func TestTreeMinMax(t *testing.T) {
	tr := NewTree()
	if _, ok := tr.Min(); ok {
		t.Error("Min of empty tree returned ok")
	}
	if _, ok := tr.Max(); ok {
		t.Error("Max of empty tree returned ok")
	}
	for _, k := range []string{"m", "a", "z", "q"} {
		tr.Put(k, nil)
	}
	if k, _ := tr.Min(); k != "a" {
		t.Errorf("Min = %q", k)
	}
	if k, _ := tr.Max(); k != "z" {
		t.Errorf("Max = %q", k)
	}
}

func TestTreeDeleteStressAgainstReference(t *testing.T) {
	tr := NewTree()
	ref := make(map[string]string)
	rng := rand.New(rand.NewSource(42))
	const ops = 20000
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("key-%03d", rng.Intn(400))
		switch rng.Intn(3) {
		case 0, 1:
			val := fmt.Sprintf("v%d", i)
			tr.Put(key, []byte(val))
			ref[key] = val
		case 2:
			wantPresent := false
			if _, ok := ref[key]; ok {
				wantPresent = true
				delete(ref, key)
			}
			if got := tr.Delete(key); got != wantPresent {
				t.Fatalf("op %d: Delete(%q) = %v, want %v", i, key, got, wantPresent)
			}
		}
		if i%1000 == 0 {
			if s := tr.checkInvariants(); s != "" {
				t.Fatalf("op %d: invariant violated: %s", i, s)
			}
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := tr.Get(k)
		if !ok || string(got) != v {
			t.Fatalf("Get(%q) = %q, %v; want %q", k, got, ok, v)
		}
	}
	if s := tr.checkInvariants(); s != "" {
		t.Fatalf("final invariant violated: %s", s)
	}
}

// TestTreeQuickProperty: for any sequence of keys, inserting then iterating
// yields the sorted unique set, and membership matches a reference map.
func TestTreeQuickProperty(t *testing.T) {
	prop := func(keys []string, deletions []uint8) bool {
		tr := NewTree()
		ref := make(map[string]bool)
		for _, k := range keys {
			tr.Put(k, []byte(k))
			ref[k] = true
		}
		// Delete a pseudo-random subset.
		for i, d := range deletions {
			if len(keys) == 0 {
				break
			}
			k := keys[(int(d)+i)%len(keys)]
			if ref[k] {
				if !tr.Delete(k) {
					return false
				}
				delete(ref, k)
			} else if tr.Delete(k) {
				return false
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		if s := tr.checkInvariants(); s != "" {
			return false
		}
		got := tr.Keys()
		want := make([]string, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		sort.Strings(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
			v, ok := tr.Get(got[i])
			if !ok || string(v) != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTreeLargeSequentialInsertDelete(t *testing.T) {
	tr := NewTree()
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Put(fmt.Sprintf("%08d", i), []byte{1})
	}
	if s := tr.checkInvariants(); s != "" {
		t.Fatalf("after inserts: %s", s)
	}
	for i := 0; i < n; i++ {
		if !tr.Delete(fmt.Sprintf("%08d", i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after full delete", tr.Len())
	}
	if s := tr.checkInvariants(); s != "" {
		t.Fatalf("after deletes: %s", s)
	}
}

func BenchmarkTreePut(b *testing.B) {
	tr := NewTree()
	for i := 0; i < b.N; i++ {
		tr.Put(fmt.Sprintf("%012d", i%100000), []byte("value"))
	}
}

func BenchmarkTreeGet(b *testing.B) {
	tr := NewTree()
	for i := 0; i < 100000; i++ {
		tr.Put(fmt.Sprintf("%012d", i), []byte("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(fmt.Sprintf("%012d", i%100000))
	}
}

func TestTreeDescendRange(t *testing.T) {
	tr := NewTree()
	for i := 0; i < 200; i++ {
		tr.Put(fmt.Sprintf("k%03d", i), []byte{byte(i)})
	}
	var got []string
	tr.DescendRange("k010", "k015", func(k string, _ []byte) bool {
		got = append(got, k)
		return true
	})
	want := []string{"k014", "k013", "k012", "k011", "k010"}
	if len(got) != len(want) {
		t.Fatalf("descend = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("descend = %v, want %v", got, want)
		}
	}
	// Unbounded hi scans from the top; early stop works.
	count := 0
	tr.DescendRange("", "", func(k string, _ []byte) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("early-stop descend = %d", count)
	}
	var first string
	tr.DescendRange("", "", func(k string, _ []byte) bool { first = k; return false })
	if first != "k199" {
		t.Errorf("descend started at %q, want k199", first)
	}
}

// Property: DescendRange visits exactly the reverse of AscendRange for any
// bounds over a deterministic tree.
func TestDescendMirrorsAscendQuick(t *testing.T) {
	tr := NewTree()
	for i := 0; i < 500; i++ {
		tr.Put(fmt.Sprintf("%04d", i*7%500), nil)
	}
	prop := func(loN, hiN uint16) bool {
		lo := fmt.Sprintf("%04d", loN%600)
		hi := fmt.Sprintf("%04d", hiN%600)
		if hi < lo {
			lo, hi = hi, lo
		}
		var up, down []string
		tr.AscendRange(lo, hi, func(k string, _ []byte) bool { up = append(up, k); return true })
		tr.DescendRange(lo, hi, func(k string, _ []byte) bool { down = append(down, k); return true })
		if len(up) != len(down) {
			return false
		}
		for i := range up {
			if up[i] != down[len(down)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
