// B-tree implementation backing key-sequenced file organizations and
// alternate-key indices. ENCOMPASS key-sequenced files are B-tree
// structured with the index maintained on every update; this is an
// in-memory equivalent with ordered range scans.
package dbfile

import "sort"

// minDegree is the B-tree minimum degree t: every node except the root has
// at least t-1 and at most 2t-1 keys.
const minDegree = 16

// Tree is an ordered map from string keys to byte-slice values.
type Tree struct {
	root *bnode
	size int
}

type bnode struct {
	keys     []string
	vals     [][]byte
	children []*bnode // nil for leaves
}

func (n *bnode) leaf() bool { return n.children == nil }

// NewTree creates an empty tree.
func NewTree() *Tree { return &Tree{root: &bnode{}} }

// Len returns the number of keys stored.
func (t *Tree) Len() int { return t.size }

// search finds key's position in node n: index and whether it matched.
func (n *bnode) search(key string) (int, bool) {
	i := sort.SearchStrings(n.keys, key)
	return i, i < len(n.keys) && n.keys[i] == key
}

// Get returns the value stored under key.
func (t *Tree) Get(key string) ([]byte, bool) {
	n := t.root
	for {
		i, ok := n.search(key)
		if ok {
			return n.vals[i], true
		}
		if n.leaf() {
			return nil, false
		}
		n = n.children[i]
	}
}

// Has reports whether key is present.
func (t *Tree) Has(key string) bool {
	_, ok := t.Get(key)
	return ok
}

// Put inserts or replaces key's value and reports whether the key was
// newly inserted.
func (t *Tree) Put(key string, val []byte) bool {
	r := t.root
	if len(r.keys) == 2*minDegree-1 {
		newRoot := &bnode{children: []*bnode{r}}
		newRoot.splitChild(0)
		t.root = newRoot
	}
	inserted := t.root.insertNonFull(key, val)
	if inserted {
		t.size++
	}
	return inserted
}

// splitChild splits the full child at index i of n.
func (n *bnode) splitChild(i int) {
	child := n.children[i]
	mid := minDegree - 1
	right := &bnode{
		keys: append([]string(nil), child.keys[mid+1:]...),
		vals: append([][]byte(nil), child.vals[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*bnode(nil), child.children[mid+1:]...)
	}
	upKey, upVal := child.keys[mid], child.vals[mid]
	child.keys = child.keys[:mid]
	child.vals = child.vals[:mid]
	if !child.leaf() {
		child.children = child.children[:mid+1]
	}

	n.keys = append(n.keys, "")
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = upKey
	n.vals = append(n.vals, nil)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = upVal
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (n *bnode) insertNonFull(key string, val []byte) bool {
	i, ok := n.search(key)
	if ok {
		n.vals[i] = val
		return false
	}
	if n.leaf() {
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		return true
	}
	if len(n.children[i].keys) == 2*minDegree-1 {
		n.splitChild(i)
		if key == n.keys[i] {
			n.vals[i] = val
			return false
		}
		if key > n.keys[i] {
			i++
		}
	}
	return n.children[i].insertNonFull(key, val)
}

// Delete removes key and reports whether it was present.
func (t *Tree) Delete(key string) bool {
	if !t.root.has(key) {
		return false
	}
	t.root.delete(key)
	if len(t.root.keys) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	t.size--
	return true
}

func (n *bnode) has(key string) bool {
	i, ok := n.search(key)
	if ok {
		return true
	}
	if n.leaf() {
		return false
	}
	return n.children[i].has(key)
}

// delete removes key from the subtree rooted at n. Precondition: key is
// present in the subtree and n has at least minDegree keys unless it is
// the root (CLRS deletion invariant).
func (n *bnode) delete(key string) {
	i, ok := n.search(key)
	switch {
	case ok && n.leaf():
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
	case ok:
		left, right := n.children[i], n.children[i+1]
		switch {
		case len(left.keys) >= minDegree:
			pk, pv := left.maxEntry()
			n.keys[i], n.vals[i] = pk, pv
			left.delete(pk)
		case len(right.keys) >= minDegree:
			sk, sv := right.minEntry()
			n.keys[i], n.vals[i] = sk, sv
			right.delete(sk)
		default:
			n.merge(i)
			left.delete(key)
		}
	default:
		child := n.children[i]
		if len(child.keys) == minDegree-1 {
			i = n.fill(i)
			child = n.children[i]
		}
		child.delete(key)
	}
}

// fill ensures child i has at least minDegree keys, borrowing or merging.
// It returns the (possibly changed) child index to descend into.
func (n *bnode) fill(i int) int {
	if i > 0 && len(n.children[i-1].keys) >= minDegree {
		n.borrowLeft(i)
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].keys) >= minDegree {
		n.borrowRight(i)
		return i
	}
	if i == len(n.children)-1 {
		n.merge(i - 1)
		return i - 1
	}
	n.merge(i)
	return i
}

func (n *bnode) borrowLeft(i int) {
	child, left := n.children[i], n.children[i-1]
	child.keys = append([]string{n.keys[i-1]}, child.keys...)
	child.vals = append([][]byte{n.vals[i-1]}, child.vals...)
	if !child.leaf() {
		child.children = append([]*bnode{left.children[len(left.children)-1]}, child.children...)
		left.children = left.children[:len(left.children)-1]
	}
	n.keys[i-1] = left.keys[len(left.keys)-1]
	n.vals[i-1] = left.vals[len(left.vals)-1]
	left.keys = left.keys[:len(left.keys)-1]
	left.vals = left.vals[:len(left.vals)-1]
}

func (n *bnode) borrowRight(i int) {
	child, right := n.children[i], n.children[i+1]
	child.keys = append(child.keys, n.keys[i])
	child.vals = append(child.vals, n.vals[i])
	if !child.leaf() {
		child.children = append(child.children, right.children[0])
		right.children = right.children[1:]
	}
	n.keys[i] = right.keys[0]
	n.vals[i] = right.vals[0]
	right.keys = right.keys[1:]
	right.vals = right.vals[1:]
}

// merge folds child i+1 and separator key i into child i.
func (n *bnode) merge(i int) {
	left, right := n.children[i], n.children[i+1]
	left.keys = append(left.keys, n.keys[i])
	left.vals = append(left.vals, n.vals[i])
	left.keys = append(left.keys, right.keys...)
	left.vals = append(left.vals, right.vals...)
	if !left.leaf() {
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

func (n *bnode) minEntry() (string, []byte) {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.keys[0], n.vals[0]
}

func (n *bnode) maxEntry() (string, []byte) {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.keys[len(n.keys)-1], n.vals[len(n.vals)-1]
}

// Min returns the smallest key, or "" if empty.
func (t *Tree) Min() (string, bool) {
	if t.size == 0 {
		return "", false
	}
	k, _ := t.root.minEntry()
	return k, true
}

// Max returns the largest key, or "" if empty.
func (t *Tree) Max() (string, bool) {
	if t.size == 0 {
		return "", false
	}
	k, _ := t.root.maxEntry()
	return k, true
}

// AscendRange visits keys in [lo, hi) in order. An empty hi means
// unbounded. fn returning false stops the scan.
func (t *Tree) AscendRange(lo, hi string, fn func(key string, val []byte) bool) {
	t.root.ascend(lo, hi, fn)
}

func (n *bnode) ascend(lo, hi string, fn func(string, []byte) bool) bool {
	i := sort.SearchStrings(n.keys, lo)
	for ; i < len(n.keys); i++ {
		if !n.leaf() {
			if !n.children[i].ascend(lo, hi, fn) {
				return false
			}
		}
		if hi != "" && n.keys[i] >= hi {
			return false
		}
		if n.keys[i] >= lo {
			if !fn(n.keys[i], n.vals[i]) {
				return false
			}
		}
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].ascend(lo, hi, fn)
	}
	return true
}

// DescendRange visits keys in [lo, hi) in REVERSE order. An empty hi means
// unbounded. fn returning false stops the scan.
func (t *Tree) DescendRange(lo, hi string, fn func(key string, val []byte) bool) {
	t.root.descend(lo, hi, fn)
}

func (n *bnode) descend(lo, hi string, fn func(string, []byte) bool) bool {
	// Walk keys high to low, visiting each key's right subtree first.
	// Keys at or above hi are filtered individually; once a key drops
	// below lo, everything further left is below lo too and the scan
	// stops.
	for i := len(n.keys) - 1; i >= -1; i-- {
		if !n.leaf() {
			if !n.children[i+1].descend(lo, hi, fn) {
				return false
			}
		}
		if i < 0 {
			break
		}
		k := n.keys[i]
		if hi != "" && k >= hi {
			continue
		}
		if k < lo {
			return false
		}
		if !fn(k, n.vals[i]) {
			return false
		}
	}
	return true
}

// Keys returns all keys in order.
func (t *Tree) Keys() []string {
	out := make([]string, 0, t.size)
	t.AscendRange("", "", func(k string, _ []byte) bool {
		out = append(out, k)
		return true
	})
	return out
}

// depth returns the tree height (root = 1), for structural tests.
func (t *Tree) depth() int {
	d := 1
	for n := t.root; !n.leaf(); n = n.children[0] {
		d++
	}
	return d
}

// checkInvariants validates B-tree structural invariants, for tests. It
// returns a description of the first violation, or "".
func (t *Tree) checkInvariants() string {
	return t.root.check(true, "", "")
}

func (n *bnode) check(isRoot bool, lo, hi string) string {
	if !isRoot && len(n.keys) < minDegree-1 {
		return "underfull node"
	}
	if len(n.keys) > 2*minDegree-1 {
		return "overfull node"
	}
	for i := 0; i < len(n.keys); i++ {
		if i > 0 && n.keys[i-1] >= n.keys[i] {
			return "keys out of order"
		}
		if lo != "" && n.keys[i] <= lo {
			return "key below subtree bound"
		}
		if hi != "" && n.keys[i] >= hi {
			return "key above subtree bound"
		}
	}
	if n.leaf() {
		return ""
	}
	if len(n.children) != len(n.keys)+1 {
		return "child count mismatch"
	}
	for i, c := range n.children {
		clo, chi := lo, hi
		if i > 0 {
			clo = n.keys[i-1]
		}
		if i < len(n.keys) {
			chi = n.keys[i]
		}
		if s := c.check(false, clo, chi); s != "" {
			return s
		}
	}
	return ""
}
