// Package pair implements the NonStop process-pair mechanism: two
// cooperating processes on distinct CPUs, a primary that serves requests
// and a backup that passively absorbs checkpoints, able to take over and
// "carry through to completion any operation initiated by the primary".
//
// The checkpoint discipline is the heart of the paper's argument that TMF
// needs no conventional Write-Ahead Log: an application (the DISCPROCESS in
// particular) checkpoints its intent — including audit records — to the
// backup *before* performing an update, so the update's recoverability
// never depends on a disc force.
//
// After a takeover the pair re-registers its service name at the new
// primary and, if a spare CPU is available, re-creates a backup from a
// state snapshot, restoring full fault tolerance.
package pair

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"encompass/internal/hw"
	"encompass/internal/msg"
)

// Control message kinds used inside a pair. Client traffic must not use
// these kinds.
const (
	kindCheckpoint = "pair.checkpoint"
	kindPromote    = "pair.promote"
	kindMkBackup   = "pair.mkbackup"
)

// ErrNoBackup is reported by Checkpoint when the pair is running without a
// backup (degraded, single-module exposure) — the operation proceeds, but
// callers may want to count these.
var ErrNoBackup = errors.New("pair: running without backup")

// ErrHalted is reported by Checkpoint when the checkpointing member's own
// CPU has failed: the member is a zombie mid-takeover and must abandon the
// operation instead of proceeding degraded — its promoted partner now owns
// the service state.
var ErrHalted = errors.New("pair: member's cpu halted")

// App is the replicated application run by a process pair. All methods are
// invoked from the owning member's single goroutine, so implementations
// need no internal locking for pair-driven access.
type App interface {
	// Handle processes one client request on the primary. Use
	// ctx.Checkpoint before externally visible effects and ctx.Reply /
	// ctx.ReplyErr to answer.
	Handle(ctx *Ctx, m msg.Message)
	// ApplyCheckpoint absorbs one checkpoint record on the backup.
	ApplyCheckpoint(cp any)
	// Snapshot captures full state for seeding a new backup.
	Snapshot() any
	// Restore installs a snapshot into a fresh backup instance.
	Restore(snap any)
	// TakeOver is invoked on the backup when it becomes primary; it must
	// complete any operation whose checkpoint it has absorbed.
	TakeOver()
}

// Ctx is passed to App.Handle.
type Ctx struct {
	pair *Pair
	proc *msg.Process
	req  msg.Message
}

// Checkpoint synchronously ships a record to the backup. It returns
// ErrNoBackup when the pair is degraded; the caller proceeds regardless,
// exactly as a NonStop primary would.
func (c *Ctx) Checkpoint(cp any) error { return c.pair.checkpoint(c.proc, cp) }

// Reply answers the client request.
func (c *Ctx) Reply(payload any) error { return c.proc.Reply(c.req, payload) }

// ReplyErr answers the client request with an error.
func (c *Ctx) ReplyErr(err error) error { return c.proc.ReplyErr(c.req, err) }

// Proc exposes the serving process (for issuing further calls from the
// handler, e.g. DISCPROCESS → AUDITPROCESS).
func (c *Ctx) Proc() *msg.Process { return c.proc }

// Req returns the request being handled.
func (c *Ctx) Req() msg.Message { return c.req }

// NewCtx derives a context addressing a different request through the same
// pair member; used when a parked request is resumed by a continuation
// message and must be answered as the original request.
func NewCtx(base *Ctx, req msg.Message) *Ctx {
	return &Ctx{pair: base.pair, proc: base.proc, req: req}
}

// Stats counts pair activity for the experiments.
type Stats struct {
	Checkpoints uint64
	Takeovers   uint64
	Degraded    uint64 // checkpoints skipped for lack of a backup
}

type member struct {
	proc     *msg.Process
	app      App
	regName  string // name the member was spawned under
	promoted bool
}

// Pair manages a primary/backup pair for one service name.
type Pair struct {
	sys     *msg.System
	name    string
	factory func() App

	mu      sync.Mutex
	primary *member // guarded by mu
	backup  *member // guarded by mu

	backupSeq   atomic.Uint64
	checkpoints atomic.Uint64
	takeovers   atomic.Uint64
	degraded    atomic.Uint64
}

// Start creates the pair: the primary on primaryCPU registered under name,
// the backup on backupCPU. factory must produce a fresh, empty App.
func Start(sys *msg.System, name string, primaryCPU, backupCPU int, factory func() App) (*Pair, error) {
	pr := &Pair{sys: sys, name: name, factory: factory}

	prim, err := pr.spawnMember(primaryCPU, name, nil)
	if err != nil {
		return nil, err
	}
	pr.mu.Lock()
	pr.primary = prim
	pr.primary.promoted = true
	pr.mu.Unlock()

	bk, err := pr.spawnMember(backupCPU, pr.backupName(), nil)
	if err == nil {
		pr.mu.Lock()
		pr.backup = bk
		pr.mu.Unlock()
	}

	sys.Node().Watch(pr.onEvent)
	return pr, nil
}

// Name returns the registered service name.
func (pr *Pair) Name() string { return pr.name }

// Addr returns the pair's logical address on its node.
func (pr *Pair) Addr() msg.Addr { return msg.Addr{Node: pr.sys.Node().Name(), Name: pr.name} }

// Stats returns activity counters.
func (pr *Pair) Stats() Stats {
	return Stats{
		Checkpoints: pr.checkpoints.Load(),
		Takeovers:   pr.takeovers.Load(),
		Degraded:    pr.degraded.Load(),
	}
}

// PrimaryCPU returns the CPU currently hosting the primary, or -1.
func (pr *Pair) PrimaryCPU() int {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.primary == nil {
		return -1
	}
	return pr.primary.proc.PID().CPU
}

// BackupCPU returns the CPU currently hosting the backup, or -1 when
// degraded.
func (pr *Pair) BackupCPU() int {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.backup == nil {
		return -1
	}
	return pr.backup.proc.PID().CPU
}

// backupName generates a fresh internal registration name for a backup
// member, so a new backup never collides with a dead predecessor.
func (pr *Pair) backupName() string {
	n := pr.backupSeq.Add(1)
	return pr.name + ".bk" + strconv.FormatUint(n, 10)
}

// spawnMember creates one member process. If snap is non-nil the fresh app
// restores from it (new backup seeding).
func (pr *Pair) spawnMember(cpu int, regName string, snap any) (*member, error) {
	app := pr.factory()
	if snap != nil {
		app.Restore(snap)
	}
	m := &member{app: app, regName: regName}
	proc, err := pr.sys.Spawn(cpu, regName, func(p *msg.Process) { pr.memberLoop(p, m) })
	if err != nil {
		return nil, err
	}
	m.proc = proc
	return m, nil
}

func (pr *Pair) memberLoop(p *msg.Process, m *member) {
	for {
		req, err := p.Recv(context.Background())
		if err != nil {
			return
		}
		switch req.Kind {
		case kindCheckpoint:
			m.app.ApplyCheckpoint(req.Payload)
			p.Reply(req, nil)
		case kindPromote:
			pr.ensurePromoted(m)
		case kindMkBackup:
			cpu := req.Payload.(int)
			pr.makeBackup(m, cpu)
		default:
			// Client request. A message can only reach us through the name
			// registry, so we are (or have just become) the primary.
			pr.ensurePromoted(m)
			m.app.Handle(&Ctx{pair: pr, proc: p, req: req}, req)
		}
	}
}

func (pr *Pair) ensurePromoted(m *member) {
	if m.promoted {
		return
	}
	m.promoted = true
	pr.takeovers.Add(1)
	m.app.TakeOver()
}

// checkpoint ships a record to the backup synchronously.
func (pr *Pair) checkpoint(from *msg.Process, cp any) error {
	if from.Context().Err() != nil {
		// The sender's CPU died mid-handler: it is no longer a pair member
		// in any meaningful sense. Its in-flight operation must fail — the
		// promoted partner (or the respawned backup) owns the state now.
		return ErrHalted
	}
	pr.mu.Lock()
	bk := pr.backup
	pr.mu.Unlock()
	if bk == nil {
		pr.degraded.Add(1)
		return ErrNoBackup
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := pr.sys.ClientCall(ctx, from.PID().CPU, msg.Addr{Name: bk.regName}, kindCheckpoint, cp)
	if err != nil {
		if from.Context().Err() != nil {
			// Our own CPU failed during the exchange — the backup may be
			// fine. Abandon the operation without demoting the backup.
			return ErrHalted
		}
		// Backup unreachable: run degraded until a new backup is created.
		pr.mu.Lock()
		if pr.backup == bk {
			pr.backup = nil
		}
		pr.mu.Unlock()
		pr.degraded.Add(1)
		return ErrNoBackup
	}
	pr.checkpoints.Add(1)
	return nil
}

// makeBackup runs in the primary's goroutine: snapshot state and seed a new
// backup on the given CPU.
func (pr *Pair) makeBackup(m *member, cpu int) {
	snap := m.app.Snapshot()
	bk, err := pr.spawnMember(cpu, pr.backupName(), snap)
	if err != nil {
		return
	}
	pr.mu.Lock()
	pr.backup = bk
	pr.mu.Unlock()
}

// onEvent reacts to hardware events: primary failure promotes the backup;
// backup failure re-creates a backup if a CPU is available.
func (pr *Pair) onEvent(e hw.Event) {
	if e.Kind != hw.EventCPUDown {
		return
	}
	pr.mu.Lock()
	prim, bk := pr.primary, pr.backup
	pr.mu.Unlock()

	switch {
	case prim != nil && prim.proc.PID().CPU == e.CPU:
		if bk == nil {
			// Double failure: the service is lost. TMF's answer to this is
			// ROLLFORWARD, tested elsewhere.
			pr.mu.Lock()
			pr.primary = nil
			pr.mu.Unlock()
			return
		}
		// Promote: re-point the name first so new calls reach the backup,
		// then let it complete checkpointed work in its own goroutine.
		pr.mu.Lock()
		pr.primary, pr.backup = bk, nil
		pr.mu.Unlock()
		pr.sys.Register(pr.name, bk.proc)
		//lint:allow droppederr a lost promote note is recovered lazily: memberLoop calls ensurePromoted on the first client message
		bk.proc.Send(msg.Addr{Name: pr.name}, kindPromote, nil)
		pr.respawnBackup(bk)
	case bk != nil && bk.proc.PID().CPU == e.CPU:
		pr.mu.Lock()
		pr.backup = nil
		pr.mu.Unlock()
		pr.respawnBackup(prim)
	}
}

// respawnBackup asks the current primary to seed a new backup on some up
// CPU other than its own.
func (pr *Pair) respawnBackup(prim *member) {
	if prim == nil {
		return
	}
	primCPU := prim.proc.PID().CPU
	for _, cpu := range pr.sys.Node().UpCPUs() {
		if cpu != primCPU {
			// A candidate CPU can go down between UpCPUs and the send; try
			// the next one rather than silently staying backup-less.
			if err := prim.proc.Send(msg.Addr{Name: pr.name}, kindMkBackup, cpu); err == nil {
				return
			}
		}
	}
}
