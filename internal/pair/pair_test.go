package pair

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"encompass/internal/hw"
	"encompass/internal/msg"
)

// counterApp is a replicated counter. "add" requests checkpoint the intent
// before applying, so a takeover never loses an acknowledged add.
type counterApp struct {
	mu    sync.Mutex
	total int
	// applied tracks op ids so a retried request is idempotent.
	applied map[int]bool
}

func newCounterApp() App {
	return &counterApp{applied: make(map[int]bool)}
}

type addOp struct {
	ID int
	N  int
}

func (a *counterApp) Handle(ctx *Ctx, m msg.Message) {
	switch m.Kind {
	case "add":
		op := m.Payload.(addOp)
		a.mu.Lock()
		dup := a.applied[op.ID]
		a.mu.Unlock()
		if !dup {
			ctx.Checkpoint(op)
			a.apply(op)
		}
		ctx.Reply(a.value())
	case "get":
		ctx.Reply(a.value())
	default:
		ctx.ReplyErr(errors.New("unknown kind"))
	}
}

func (a *counterApp) apply(op addOp) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.applied[op.ID] {
		a.applied[op.ID] = true
		a.total += op.N
	}
}

func (a *counterApp) value() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

func (a *counterApp) ApplyCheckpoint(cp any) { a.apply(cp.(addOp)) }

func (a *counterApp) Snapshot() any {
	a.mu.Lock()
	defer a.mu.Unlock()
	applied := make(map[int]bool, len(a.applied))
	for k, v := range a.applied {
		applied[k] = v
	}
	return &counterApp{total: a.total, applied: applied}
}

func (a *counterApp) Restore(snap any) {
	s := snap.(*counterApp)
	a.mu.Lock()
	a.total = s.total
	a.applied = s.applied
	a.mu.Unlock()
}

func (a *counterApp) TakeOver() {}

func newPairEnv(t *testing.T, cpus int) (*msg.System, *Pair) {
	t.Helper()
	node, err := hw.NewNode("n", cpus)
	if err != nil {
		t.Fatal(err)
	}
	sys := msg.NewSystem(node)
	pr, err := Start(sys, "counter", 0, 1, newCounterApp)
	if err != nil {
		t.Fatal(err)
	}
	return sys, pr
}

func call(t *testing.T, sys *msg.System, kind string, payload any) (msg.Message, error) {
	t.Helper()
	// Issue from the last CPU so client traffic does not originate on the
	// pair's CPUs.
	cpu := sys.Node().NumCPUs() - 1
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return sys.ClientCall(ctx, cpu, msg.Addr{Name: "counter"}, kind, payload)
}

func TestBasicServe(t *testing.T) {
	sys, pr := newPairEnv(t, 3)
	r, err := call(t, sys, "add", addOp{ID: 1, N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Payload != 5 {
		t.Errorf("value = %v, want 5", r.Payload)
	}
	if st := pr.Stats(); st.Checkpoints != 1 {
		t.Errorf("checkpoints = %d, want 1", st.Checkpoints)
	}
}

func TestTakeoverPreservesCheckpointedState(t *testing.T) {
	sys, pr := newPairEnv(t, 3)
	for i := 1; i <= 10; i++ {
		if _, err := call(t, sys, "add", addOp{ID: i, N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if pr.PrimaryCPU() != 0 {
		t.Fatalf("primary cpu = %d, want 0", pr.PrimaryCPU())
	}
	sys.Node().FailCPU(0)

	r, err := call(t, sys, "get", nil)
	if err != nil {
		t.Fatalf("call after takeover: %v", err)
	}
	want := 55
	if r.Payload != want {
		t.Errorf("value after takeover = %v, want %d", r.Payload, want)
	}
	if pr.PrimaryCPU() != 1 {
		t.Errorf("primary cpu after takeover = %d, want 1", pr.PrimaryCPU())
	}
	if st := pr.Stats(); st.Takeovers != 1 {
		t.Errorf("takeovers = %d, want 1", st.Takeovers)
	}
}

func TestBackupRespawnAfterTakeover(t *testing.T) {
	sys, pr := newPairEnv(t, 3)
	call(t, sys, "add", addOp{ID: 1, N: 7})
	sys.Node().FailCPU(0)
	// After promotion the pair should seed a new backup on CPU 2.
	waitFor(t, func() bool { return pr.BackupCPU() == 2 })
	// Kill the new primary too; the respawned backup must carry the state.
	call(t, sys, "add", addOp{ID: 2, N: 3})
	sys.Node().FailCPU(1)
	r, err := call(t, sys, "get", nil)
	if err != nil {
		t.Fatalf("call after second takeover: %v", err)
	}
	if r.Payload != 10 {
		t.Errorf("value = %v, want 10", r.Payload)
	}
	if st := pr.Stats(); st.Takeovers != 2 {
		t.Errorf("takeovers = %d, want 2", st.Takeovers)
	}
}

func TestBackupFailureRespawns(t *testing.T) {
	sys, pr := newPairEnv(t, 4)
	call(t, sys, "add", addOp{ID: 1, N: 2})
	sys.Node().FailCPU(1) // kill the backup
	waitFor(t, func() bool { return pr.BackupCPU() >= 0 && pr.BackupCPU() != 1 })
	// Now kill the primary; new backup must have the snapshot state.
	sys.Node().FailCPU(0)
	r, err := call(t, sys, "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Payload != 2 {
		t.Errorf("value = %v, want 2", r.Payload)
	}
}

func TestDoubleFailureLosesService(t *testing.T) {
	// With only two CPUs there is nowhere to respawn a backup; failing both
	// loses the service — the multiple-module failure the paper says is
	// handled by ROLLFORWARD, not by the pair.
	sys, _ := newPairEnv(t, 2)
	// Client calls must come from CPU 0 or 1 here; use 0 until it dies.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := sys.ClientCall(ctx, 0, msg.Addr{Name: "counter"}, "add", addOp{ID: 1, N: 1}); err != nil {
		t.Fatal(err)
	}
	sys.Node().FailCPU(0)
	sys.Node().FailCPU(1)
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	_, err := sys.ClientCall(ctx2, 0, msg.Addr{Name: "counter"}, "get", nil)
	if err == nil {
		t.Fatal("call should fail after double module failure")
	}
}

func TestDegradedOperationWithoutBackup(t *testing.T) {
	sys, pr := newPairEnv(t, 2)
	sys.Node().FailCPU(1) // kill backup; no spare CPU on a 2-cpu node
	waitFor(t, func() bool { return pr.BackupCPU() == -1 })
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	r, err := sys.ClientCall(ctx, 0, msg.Addr{Name: "counter"}, "add", addOp{ID: 1, N: 4})
	if err != nil {
		t.Fatalf("degraded call: %v", err)
	}
	if r.Payload != 4 {
		t.Errorf("value = %v, want 4", r.Payload)
	}
	if st := pr.Stats(); st.Degraded == 0 {
		t.Error("degraded counter not incremented")
	}
}

func TestConcurrentClientsAcrossTakeover(t *testing.T) {
	sys, _ := newPairEnv(t, 4)
	const n = 50
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for attempt := 0; attempt < 20; attempt++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				_, err := sys.ClientCall(ctx, 3, msg.Addr{Name: "counter"}, "add", addOp{ID: id, N: 1})
				cancel()
				if err == nil {
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
			errCh <- fmt.Errorf("client %d: exhausted retries", id)
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	sys.Node().FailCPU(0)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	r, err := call(t, sys, "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Idempotent op ids: despite retries across the takeover, each client's
	// add applies exactly once.
	if r.Payload != n {
		t.Errorf("value = %v, want %d", r.Payload, n)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}
