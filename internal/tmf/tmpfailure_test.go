package tmf

import (
	"errors"
	"testing"
	"time"

	"encompass/internal/audit"
	"encompass/internal/txid"
)

// The TMP is itself a process pair; these tests exercise the protocol
// while TMP primaries fail.

func TestTMPPrimaryFailureBeforeCommit(t *testing.T) {
	// Fail the remote node's TMP primary CPU before the commit: the TMP
	// backup takes over and phase one still succeeds.
	nodes, _ := testCluster(t, "a", "b")
	a, b := nodes["a"], nodes["b"]

	tx, _ := a.mon.Begin(2)
	a.mon.NoteRemoteSend(tx, "b")
	a.insert(t, "b", tx, "k", "v")

	// b's TMP pair is on CPUs 0/1; fail the primary.
	b.hw.FailCPU(0)

	if err := a.mon.End(tx); err != nil {
		t.Fatalf("commit through TMP takeover: %v", err)
	}
	waitFor(t, func() bool {
		o, ok := b.mon.Outcome(tx)
		return ok && o == audit.OutcomeCommitted
	})
	if v, _ := b.read(t, "b", "k"); v != "v" {
		t.Errorf("b value = %q", v)
	}
}

func TestHomeTMPPrimaryFailureBeforeCommit(t *testing.T) {
	// Fail the HOME node's TMP primary before END: the commit must still
	// complete (the protocol runs through the local monitor; TMP hosts
	// the coordination endpoints, which the pair keeps available).
	nodes, _ := testCluster(t, "a", "b")
	a, b := nodes["a"], nodes["b"]

	tx, _ := a.mon.Begin(2)
	a.mon.NoteRemoteSend(tx, "b")
	a.insert(t, "b", tx, "k", "v")
	a.insert(t, "a", tx, "ka", "va")

	a.hw.FailCPU(0) // home TMP primary

	if err := a.mon.End(tx); err != nil {
		t.Fatalf("commit after home TMP takeover: %v", err)
	}
	for _, n := range []*testNode{a, b} {
		if o, ok := n.mon.Outcome(tx); !ok || o != audit.OutcomeCommitted {
			t.Errorf("%s outcome = %v, %v", n.name, o, ok)
		}
	}
}

func TestDecisionUniformUnderMidProtocolPartition(t *testing.T) {
	// Whatever happens mid-protocol, the two nodes must never disagree on
	// a transaction's disposition. Drive many transactions, partitioning
	// at the phase-1 boundary on a rotating subset.
	nodes, net := testCluster(t, "a", "b")
	a, b := nodes["a"], nodes["b"]

	for i := 0; i < 10; i++ {
		key := "k" + string(rune('0'+i))
		tx, _ := a.mon.Begin(2)
		if err := a.mon.NoteRemoteSend(tx, "b"); err != nil {
			net.HealAll()
			continue
		}
		a.insert(t, "b", tx, key, "v")
		if i%2 == 0 {
			a.mon.SetPhase1Hook(func(txid.ID) { net.Partition("b") })
		}
		err := a.mon.End(tx)
		a.mon.SetPhase1Hook(nil)
		net.HealAll()
		a.mon.FlushSafeQueue()

		// Wait for b to learn the disposition.
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if _, ok := b.mon.Outcome(tx); ok {
				break
			}
			a.mon.FlushSafeQueue()
			time.Sleep(2 * time.Millisecond)
		}
		ao, aok := a.mon.Outcome(tx)
		bo, bok := b.mon.Outcome(tx)
		if !aok || !bok {
			t.Fatalf("tx %d: dispositions unknown: a=%v b=%v (End err: %v)", i, aok, bok, err)
		}
		if ao != bo {
			t.Fatalf("tx %d: decision not uniform: a=%s b=%s (End err: %v)", i, ao, bo, err)
		}
		if err == nil && ao != audit.OutcomeCommitted {
			t.Fatalf("tx %d: End succeeded but outcome is %s", i, ao)
		}
		if errors.Is(err, ErrAborted) && ao != audit.OutcomeAborted {
			t.Fatalf("tx %d: End reported abort but outcome is %s", i, ao)
		}
	}
}

func TestSafeDeliverySurvivesRepeatedPartitions(t *testing.T) {
	// Queue a phase-two message across a partition, flap the link a few
	// times, and confirm delivery eventually happens exactly once.
	nodes, net := testCluster(t, "a", "b")
	a, b := nodes["a"], nodes["b"]

	tx, _ := a.mon.Begin(2)
	a.mon.NoteRemoteSend(tx, "b")
	a.insert(t, "b", tx, "k", "v")
	a.mon.SetPhase1Hook(func(txid.ID) { net.Partition("b") })
	if err := a.mon.End(tx); err != nil {
		t.Fatal(err)
	}
	a.mon.SetPhase1Hook(nil)

	for i := 0; i < 3; i++ {
		net.HealAll()
		net.Partition("b")
	}
	net.HealAll()
	waitFor(t, func() bool {
		o, ok := b.mon.Outcome(tx)
		return ok && o == audit.OutcomeCommitted
	})
	if st := b.mon.State(tx); st != txid.StateEnded {
		t.Errorf("b state = %v", st)
	}
	if !a.mon.WaitSafeQueueEmpty(2 * time.Second) {
		t.Error("safe queue never drained")
	}
	// MAT holds exactly one record for the transaction.
	count := 0
	for _, rec := range b.mon.MonitorTrail().Records() {
		if rec.Tx == tx {
			count++
		}
	}
	if count != 1 {
		t.Errorf("b MAT records for tx = %d, want 1", count)
	}
}

func TestForgetAfterTerminal(t *testing.T) {
	nodes, _ := testCluster(t, "a")
	a := nodes["a"]
	tx, _ := a.mon.Begin(0)
	a.insert(t, "a", tx, "k", "v")
	if err := a.mon.End(tx); err != nil {
		t.Fatal(err)
	}
	a.mon.Forget(tx)
	if st := a.mon.State(tx); st != txid.StateNone {
		t.Errorf("state after Forget = %v", st)
	}
	// A straggler op for the forgotten transid is rejected.
	if err := a.mon.RegisterLocalVolume(tx, "v-a"); !errors.Is(err, ErrUnknownTx) {
		t.Errorf("err = %v, want ErrUnknownTx", err)
	}
}
