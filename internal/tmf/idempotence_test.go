package tmf

import (
	"errors"
	"testing"
	"time"

	"encompass/internal/audit"
	"encompass/internal/expand"
	"encompass/internal/txid"
)

// These tests pin the 2PC handlers' idempotence under the duplicate and
// reordered delivery the unreliable EXPAND mode produces: a retransmitted
// or duplicated protocol message must re-send the earlier outcome, never
// redo the work, corrupt the transmission tree, or resurrect a resolved
// transaction.

// commitDistributed runs one a→b distributed transaction to completion and
// returns its id.
func commitDistributed(t *testing.T, nodes map[string]*testNode) txid.ID {
	t.Helper()
	a, b := nodes["a"], nodes["b"]
	tx, err := a.mon.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.mon.NoteRemoteSend(tx, "b"); err != nil {
		t.Fatal(err)
	}
	a.insert(t, "a", tx, "k-"+tx.String(), "va")
	a.insert(t, "b", tx, "k-"+tx.String(), "vb")
	if err := a.mon.End(tx); err != nil {
		t.Fatal(err)
	}
	if !b.mon.WaitSafeQueueEmpty(5 * time.Second) {
		t.Fatal("safe queue did not drain")
	}
	return tx
}

func TestDuplicatePhase1AfterCommitReacks(t *testing.T) {
	nodes, _ := testCluster(t, "a", "b")
	tx := commitDistributed(t, nodes)
	b := nodes["b"]
	if st := b.mon.State(tx); st != txid.StateEnded {
		t.Fatalf("state on b = %v, want ended", st)
	}
	committed := b.mon.Stats().Committed
	// A straggler/duplicate phase one arriving after the outcome applied:
	// must re-ack affirmatively without redoing phase-one work.
	if err := b.mon.phase1Inbound(tx); err != nil {
		t.Fatalf("duplicate phase one after commit: %v, want nil re-ack", err)
	}
	if got := b.mon.Stats().Committed; got != committed {
		t.Errorf("Committed moved %d→%d on a duplicate phase one", committed, got)
	}
}

func TestDuplicatePhase1AfterAbortResendsAbort(t *testing.T) {
	nodes, _ := testCluster(t, "a", "b")
	a, b := nodes["a"], nodes["b"]
	tx, err := a.mon.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.mon.NoteRemoteSend(tx, "b"); err != nil {
		t.Fatal(err)
	}
	a.insert(t, "b", tx, "kx", "vb")
	if err := a.mon.Abort(tx, "test abort"); err != nil {
		t.Fatal(err)
	}
	if !b.mon.WaitSafeQueueEmpty(5 * time.Second) {
		t.Fatal("safe queue did not drain")
	}
	// Reordered phase one arriving after the abort already applied on b:
	// the reply must be the abort outcome, not fresh phase-one work.
	if err := b.mon.phase1Inbound(tx); !errors.Is(err, ErrAborted) {
		t.Fatalf("duplicate phase one after abort: %v, want ErrAborted", err)
	}
}

func TestDuplicatePhase2AppliesOnce(t *testing.T) {
	nodes, _ := testCluster(t, "a", "b")
	tx := commitDistributed(t, nodes)
	b := nodes["b"]
	committed := b.mon.Stats().Committed
	recs := len(b.mon.MonitorTrail().Records())
	// Duplicate safe-delivery "ended": must be a no-op.
	b.mon.applyEnded(tx)
	b.mon.applyEnded(tx)
	if got := b.mon.Stats().Committed; got != committed {
		t.Errorf("Committed moved %d→%d on duplicate phase two", committed, got)
	}
	if got := len(b.mon.MonitorTrail().Records()); got != recs {
		t.Errorf("Monitor Audit Trail grew %d→%d on duplicate phase two", recs, got)
	}
}

func TestDuplicateAbortAppliesOnce(t *testing.T) {
	nodes, _ := testCluster(t, "a", "b")
	a, b := nodes["a"], nodes["b"]
	tx, err := a.mon.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.mon.NoteRemoteSend(tx, "b"); err != nil {
		t.Fatal(err)
	}
	a.insert(t, "b", tx, "ky", "vb")
	if err := a.mon.Abort(tx, "test abort"); err != nil {
		t.Fatal(err)
	}
	if !b.mon.WaitSafeQueueEmpty(5 * time.Second) {
		t.Fatal("safe queue did not drain")
	}
	aborted := b.mon.Stats().Aborted
	backouts := b.mon.Stats().Backouts
	b.mon.applyAborting(tx)
	b.mon.applyAborting(tx)
	if got := b.mon.Stats().Aborted; got != aborted {
		t.Errorf("Aborted moved %d→%d on duplicate abort", aborted, got)
	}
	if got := b.mon.Stats().Backouts; got != backouts {
		t.Errorf("Backouts moved %d→%d on duplicate abort: backout re-ran", backouts, got)
	}
}

func TestDuplicateBeginFromParentKeepsChildRelation(t *testing.T) {
	nodes, _ := testCluster(t, "a", "b")
	b := nodes["b"]
	tx := txid.ID{Home: "a", CPU: 1, Seq: 99}
	if known := b.mon.beginRemote(tx, "a"); known {
		t.Fatal("first begin reported already-known")
	}
	// A duplicated begin frame from the recorded parent must re-ack
	// "not already known": the parent relies on that answer to keep b in
	// its child set, and dropping b would orphan b's updates.
	if known := b.mon.beginRemote(tx, "a"); known {
		t.Error("duplicate begin from parent reported already-known; the transmission tree would lose this child")
	}
	// A begin from a DIFFERENT node must still report known, keeping the
	// transmission graph a tree.
	if known := b.mon.beginRemote(tx, "c"); !known {
		t.Error("begin from a second node not reported as known: the graph would stop being a tree")
	}
}

func TestLateBeginAfterResolutionDoesNotResurrect(t *testing.T) {
	nodes, _ := testCluster(t, "a", "b")
	b := nodes["b"]
	tx := commitDistributed(t, nodes)
	b.mon.Forget(tx)
	// A stale retransmitted begin for a transid that already completed and
	// left the system: acknowledged as known, and no control block returns.
	if known := b.mon.beginRemote(tx, "a"); !known {
		t.Error("late begin after resolution not reported as known")
	}
	if _, err := b.mon.tcb(tx); err == nil {
		t.Error("late begin resurrected a control block for a resolved transid")
	}
	if st := b.mon.State(tx); st != txid.StateNone {
		t.Errorf("late begin re-broadcast state %v for a resolved transid", st)
	}
}

// TestDistributedCommitUnderDuplication drives full distributed commits
// over a line that duplicates most frames: every handler sees duplicates
// and the protocol must still converge with matching outcomes on both
// nodes.
func TestDistributedCommitUnderDuplication(t *testing.T) {
	nodes, net := testCluster(t, "a", "b")
	if err := net.SetLinkFault("a", "b", expand.FaultProfile{Duplicate: 0.8, Reorder: 0.5, Seed: 99}); err != nil {
		t.Fatal(err)
	}
	a, b := nodes["a"], nodes["b"]
	for i := 0; i < 10; i++ {
		tx := commitDistributed(t, nodes)
		oa, oka := a.mon.Outcome(tx)
		ob, okb := b.mon.Outcome(tx)
		if !oka || !okb || oa != audit.OutcomeCommitted || ob != audit.OutcomeCommitted {
			t.Fatalf("tx %s outcomes: a=%v(%v) b=%v(%v), want committed on both", tx, oa, oka, ob, okb)
		}
	}
	if st := net.Stats(); st.DupsDropped == 0 {
		t.Error("DupsDropped = 0 under 80% duplication")
	}
}
