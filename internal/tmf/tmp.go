package tmf

import (
	"context"
	"fmt"
	"time"

	"encompass/internal/audit"
	"encompass/internal/hw"
	"encompass/internal/msg"
	"encompass/internal/obs"
	"encompass/internal/pair"
	"encompass/internal/txid"
)

// TMP message kinds. Remote-begin and phase one are critical-response:
// the destination must be reachable and reply affirmatively. Ended and
// aborting are safe-delivery: delivery is guaranteed whenever transmission
// becomes possible, but not time-critical.
const (
	kindRemoteBegin = "tmp.begin"
	kindPhase1      = "tmp.phase1"
	kindEnded       = "tmp.ended"
	kindAborting    = "tmp.aborting"
	kindQuery       = "tmp.query"
)

// tmpName is the registered name of every node's TMP pair.
const tmpName = "tmp"

// tmpReq is the payload of TMP-to-TMP messages.
type tmpReq struct {
	Tx     txid.ID
	Source string // sending node
}

// QueryResp answers a disposition query (rollforward negotiation, tmfctl).
// Protocol names the answering node's disposition protocol; Decider names
// the evidence the answer rests on (the Monitor Audit Trail, an acceptor
// quorum, a recovery ballot).
type QueryResp struct {
	Known     bool
	Committed bool
	State     txid.State
	Protocol  string
	Decider   string
}

// beginResp answers a remote-transaction-begin: AlreadyKnown tells the
// sender it is not this node's parent in the transmission tree.
type beginResp struct {
	AlreadyKnown bool
}

func init() {
	msg.RegisterPayload(tmpReq{})
	msg.RegisterPayload(QueryResp{})
	msg.RegisterPayload(beginResp{})
}

// tmpApp is the TMP pair application. All durable coordination state lives
// in the Monitor (whose authority is the replicated state tables and the
// Monitor Audit Trail), so checkpoints are empty and takeover is trivial.
type tmpApp struct {
	m *Monitor
}

func (a *tmpApp) Handle(ctx *pair.Ctx, req msg.Message) {
	switch req.Kind {
	case kindRemoteBegin:
		r := req.Payload.(tmpReq)
		// "Remote transaction begin": broadcast the transid in active
		// state to all processors on this node.
		known := a.m.beginRemote(r.Tx, r.Source)
		ctx.Reply(beginResp{AlreadyKnown: known})
	case kindPhase1:
		r := req.Payload.(tmpReq)
		if err := a.m.phase1Inbound(r.Tx); err != nil {
			ctx.ReplyErr(err)
			return
		}
		ctx.Reply(nil)
	case kindEnded:
		r := req.Payload.(tmpReq)
		a.m.applyEnded(r.Tx)
		ctx.Reply(nil)
	case kindAborting:
		r := req.Payload.(tmpReq)
		a.m.applyAborting(r.Tx)
		ctx.Reply(nil)
	case kindQuery:
		r := req.Payload.(tmpReq)
		resp := QueryResp{State: a.m.State(r.Tx), Protocol: a.m.proto.Name()}
		if o, decider, known := a.m.Disposition(r.Tx); known {
			resp.Known = true
			resp.Committed = o == audit.OutcomeCommitted
			resp.Decider = decider
		}
		ctx.Reply(resp)
	default:
		ctx.ReplyErr(fmt.Errorf("tmf: unknown TMP request %q", req.Kind))
	}
}

func (a *tmpApp) ApplyCheckpoint(any) {}
func (a *tmpApp) Snapshot() any       { return nil }
func (a *tmpApp) Restore(any)         {}

// TakeOver runs when the backup TMP is promoted after the primary's CPU
// failed. Under a non-blocking protocol the promoted TMP re-arms an
// in-doubt watcher for every transaction this node is still bound to
// without a known disposition — the learner path resolves them from the
// acceptor quorum even though the coordinator that was driving them may
// have died with the failed CPU.
func (a *tmpApp) TakeOver() {
	m := a.m
	if !m.proto.NonBlocking() {
		return
	}
	var pending []txid.ID
	m.mu.Lock()
	for id, t := range m.txs {
		if t.protoBegun || (!t.isHome && t.phase1Acked) {
			pending = append(pending, id)
		}
	}
	m.mu.Unlock()
	for _, id := range pending {
		if _, resolved := m.mat.OutcomeOf(id); resolved {
			continue
		}
		if m.State(id).Terminal() {
			continue
		}
		m.armInDoubtWatcher(id)
	}
}

func (m *Monitor) startTMP(primaryCPU, backupCPU int) error {
	app := &tmpApp{m: m}
	m.tmpPair = app
	p, err := pair.Start(m.sys, tmpName, primaryCPU, backupCPU, func() pair.App { return app })
	if err != nil {
		return err
	}
	m.tmpCPU = p.PrimaryCPU
	return nil
}

// tmpCall issues a critical-response message to another node's TMP.
func (m *Monitor) tmpCall(destNode, kind string, req tmpReq) error {
	_, err := m.tmpCallResp(destNode, kind, req)
	return err
}

// tmpCallResp is the single choke point for TMP-to-TMP calls; each call
// traces as a child-request/child-reply event pair (the reply carries the
// round-trip time, and an error on a safe-delivery kind means the message
// went to the retry queue, not that it was lost).
func (m *Monitor) tmpCallResp(destNode, kind string, req tmpReq) (msg.Message, error) {
	req.Source = m.node
	cpu := m.tmpCPUOrFirstUp()
	m.tracer.Record(obs.Event{Tx: req.Tx, Kind: obs.EvChildRequest, Node: m.node,
		CPU: cpu, Detail: destNode + " " + kind})
	ctx, cancel := context.WithTimeout(context.Background(), criticalCallTimeout)
	defer cancel()
	start := time.Now()
	resp, err := m.sys.ClientCall(ctx, cpu, msg.Addr{Node: destNode, Name: tmpName}, kind, req)
	ev := obs.Event{Tx: req.Tx, Kind: obs.EvChildReply, Node: m.node,
		CPU: cpu, Dur: time.Since(start), Detail: destNode + " " + kind}
	if err != nil {
		ev.Err = err.Error()
	}
	m.tracer.Record(ev)
	return resp, err
}

// NoteRemoteSend must be called before the first transmission of a transid
// to destNode (the File System does this when a SEND or remote disc I/O
// first targets that node). It performs the critical-response "remote
// transaction begin" and records destNode as our child in the transmission
// tree.
func (m *Monitor) NoteRemoteSend(tx txid.ID, destNode string) error {
	if destNode == m.node {
		return nil
	}
	m.mu.Lock()
	t, ok := m.txs[tx]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s on %s", ErrUnknownTx, tx, m.node)
	}
	if t.children[destNode] {
		m.mu.Unlock()
		return nil
	}
	m.mu.Unlock()
	// Under a logged disposition protocol, the child's consensus instance
	// (and our own) must be durably registered with the decision
	// infrastructure BEFORE the transid is first transmitted: a recovery
	// proposer discovers the participant set from the acceptors, and an
	// unregistered participant would be invisible to it.
	if m.proto.Name() != ProtoAbbreviated {
		if err := m.ensureProtoBegun(tx); err != nil {
			return err
		}
		if err := m.proto.Join(tx, destNode); err != nil {
			return fmt.Errorf("%w: disposition join of %s: %v", ErrNodeUnreachable, destNode, err)
		}
	}
	r, err := m.tmpCallResp(destNode, kindRemoteBegin, tmpReq{Tx: tx})
	if err != nil {
		return fmt.Errorf("%w: remote begin at %s: %v", ErrNodeUnreachable, destNode, err)
	}
	if br, ok := r.Payload.(beginResp); ok && br.AlreadyKnown {
		// destNode already has the transid (it is elsewhere in the
		// transmission tree); we are not its parent and must not send it
		// protocol messages. Keeping the graph a tree also keeps the
		// parent→child protocol-mutex ordering deadlock-free.
		return nil
	}
	m.mu.Lock()
	t.children[destNode] = true
	m.mu.Unlock()
	return nil
}

// phase1Inbound handles a phase-one request from the node that transmitted
// the transid to us: refuse if we already aborted unilaterally; otherwise
// enter "ending", force our trails, recurse to our children, and mark the
// affirmative reply (after which we can no longer abort unilaterally).
//
// The handler is idempotent under duplicate and reordered delivery: a
// repeat of an already-acknowledged phase one re-acks without redoing the
// forces, and a straggler arriving after the outcome re-sends the outcome
// (affirmative for ENDED, ErrAborted for an abort) instead of corrupting
// state.
func (m *Monitor) phase1Inbound(tx txid.ID) error {
	t, err := m.lockProto(tx)
	if err != nil {
		// A straggler phase one can arrive after the transaction resolved
		// and left the system (Forget). The Monitor Audit Trail still knows
		// the disposition: re-send it instead of erroring.
		if o, ok := m.mat.OutcomeOf(tx); ok {
			if o == audit.OutcomeCommitted {
				return nil
			}
			return fmt.Errorf("%w: %s previously aborted on %s", ErrAborted, tx, m.node)
		}
		return err
	}
	defer t.protoMu.Unlock()
	st := m.State(tx)
	if st == txid.StateAborting || st == txid.StateAborted {
		return fmt.Errorf("%w: %s previously aborted on %s", ErrAborted, tx, m.node)
	}
	if st == txid.StateEnded {
		// Duplicate phase one after the commit outcome already applied
		// here: the trails were forced long ago; re-ack affirmatively.
		return nil
	}
	m.mu.Lock()
	acked := t.phase1Acked
	m.mu.Unlock()
	if acked {
		// Duplicated or retransmitted phase one: the first copy did the
		// work and we are already bound by our affirmative vote.
		return nil
	}
	m.closeToNewWork(tx)
	if st == txid.StateActive {
		m.broadcast(tx, txid.StateEnding)
	}
	// Local trail forces and the recursive phase one to our own children
	// run in parallel, exactly as on the home node.
	p1Start := time.Now()
	if err := m.phase1(tx); err != nil {
		m.abortLocked(tx, fmt.Sprintf("phase one failed: %v", err))
		return err
	}
	// Under a logged disposition protocol the affirmative reply is a vote
	// and must be durable before it is sent: for Paxos Commit this is the
	// ballot-0 fast path — the vote IS the phase-2a/2b of our consensus
	// instance at the home node's acceptors. A vote that cannot reach a
	// majority is a refusal: abort unilaterally while we still may.
	if m.proto.Name() != ProtoAbbreviated {
		if err := m.proto.VoteSelf(tx); err != nil {
			m.abortLocked(tx, fmt.Sprintf("disposition vote failed: %v", err))
			return fmt.Errorf("%w: %s: disposition vote failed on %s: %v", ErrAborted, tx, m.node, err)
		}
	}
	m.hPhase1.Observe(time.Since(p1Start))
	m.mu.Lock()
	t.phase1Acked = true
	t.protoBegun = t.protoBegun || m.proto.Name() != ProtoAbbreviated
	m.mu.Unlock()
	// In-doubt insurance: if the disposition never arrives (dead
	// coordinator, partition), the watcher learns it from the acceptor
	// quorum instead of holding locks until an operator intervenes.
	m.armInDoubtWatcher(tx)
	return nil
}

// QueryRemote asks another node's TMP for a transaction's disposition.
func (m *Monitor) QueryRemote(node string, tx txid.ID) (QueryResp, error) {
	ctx, cancel := context.WithTimeout(context.Background(), criticalCallTimeout)
	defer cancel()
	r, err := m.sys.ClientCall(ctx, m.tmpCPUOrFirstUp(), msg.Addr{Node: node, Name: tmpName}, kindQuery, tmpReq{Tx: tx, Source: m.node})
	if err != nil {
		return QueryResp{}, err
	}
	return r.Payload.(QueryResp), nil
}

// --- safe-delivery machinery ---

type safeMsg struct {
	dest string
	kind string
	req  tmpReq
}

// safeDeliverChildren sends a safe-delivery message to each child node,
// queueing for retry any that are unreachable. "The sending of
// safe-delivery messages — whenever transmission becomes possible — is
// guaranteed, but their delivery is not time-critical."
func (m *Monitor) safeDeliverChildren(tx txid.ID, kind string) {
	_, _, children, _, _, err := m.snapshotTx(tx)
	if err != nil {
		return
	}
	for _, child := range children {
		m.safeDeliver(safeMsg{dest: child, kind: kind, req: tmpReq{Tx: tx, Source: m.node}})
	}
}

func (m *Monitor) safeDeliver(sm safeMsg) {
	if err := m.tmpCall(sm.dest, sm.kind, sm.req); err != nil {
		m.sqMu.Lock()
		m.safeQueue[sm.dest] = append(m.safeQueue[sm.dest], sm)
		m.sqMu.Unlock()
		m.scheduleSafeRetry()
	}
}

// Safe-queue retry pacing: delivery "whenever transmission becomes
// possible" must not depend solely on a topology-change callback — on a
// lossy-but-up line a safe-delivery call can time out with no topology
// event ever firing. The queue therefore retries itself with exponential
// backoff, reset whenever it fully drains.
const (
	safeRetryBase = 25 * time.Millisecond
	safeRetryMax  = 2 * time.Second
)

// scheduleSafeRetry arms (at most one) delayed retry of the safe queue,
// doubling the delay up to the cap while the queue stays non-empty.
func (m *Monitor) scheduleSafeRetry() {
	m.sqMu.Lock()
	if m.sqRetryArmed || len(m.safeQueue) == 0 {
		m.sqMu.Unlock()
		return
	}
	m.sqRetryArmed = true
	if m.sqRetryDelay <= 0 {
		m.sqRetryDelay = safeRetryBase
	}
	d := m.sqRetryDelay
	m.sqRetryDelay *= 2
	if m.sqRetryDelay > safeRetryMax {
		m.sqRetryDelay = safeRetryMax
	}
	m.sqMu.Unlock()
	time.AfterFunc(d, func() {
		m.sqMu.Lock()
		m.sqRetryArmed = false
		m.sqMu.Unlock()
		m.FlushSafeQueue()
	})
}

// FlushSafeQueue retries queued safe-delivery messages; invoked on
// topology change, by the backoff retry loop, and callable directly
// (tests, tmfctl). Messages that fail again re-queue and re-arm the
// backoff; a full drain resets it.
func (m *Monitor) FlushSafeQueue() {
	m.sqMu.Lock()
	queued := m.safeQueue
	m.safeQueue = make(map[string][]safeMsg)
	m.sqMu.Unlock()
	for _, q := range queued {
		for _, sm := range q {
			m.cSafeRetries.Inc()
			m.safeDeliver(sm)
		}
	}
	m.sqMu.Lock()
	if len(m.safeQueue) == 0 {
		m.sqRetryDelay = 0
	}
	m.sqMu.Unlock()
}

// onTopologyChange reacts to partitions and heals: queued safe-delivery
// messages are retried, and transactions that involve now-unreachable
// nodes are aborted where the protocol permits.
func (m *Monitor) onTopologyChange() {
	//lint:allow spawnlifecycle fire-and-forget by design: both calls are idempotent sweeps that terminate on their own; a lost sweep is re-triggered by the next topology event or the safe-queue retry timer
	go func() {
		m.FlushSafeQueue()
		m.abortUnreachable()
	}()
}

// abortUnreachable aborts transactions affected by "complete loss of
// communication with a network node which participated in the
// transaction": at the home node, any non-terminal transaction with an
// unreachable child; at a non-home node, any transaction whose source
// became unreachable before we acknowledged phase one. A non-home node
// that acknowledged phase one holds its locks (in-doubt).
func (m *Monitor) abortUnreachable() {
	if m.net == nil {
		return
	}
	type victim struct {
		tx     txid.ID
		reason string
	}
	var victims []victim
	m.mu.Lock()
	for id, t := range m.txs {
		// peek table state without broadcast
		m.tabMu.Lock()
		st := m.stateLocked(id)
		m.tabMu.Unlock()
		if st.Terminal() || st == txid.StateAborting {
			continue
		}
		if t.isHome {
			for child := range t.children {
				if !m.net.Reachable(m.node, child) {
					victims = append(victims, victim{id, "lost communication with participant " + child})
					break
				}
			}
		} else if !t.phase1Acked && t.source != "" && !m.net.Reachable(m.node, t.source) {
			victims = append(victims, victim{id, "lost communication with source " + t.source})
		}
	}
	m.mu.Unlock()
	for _, v := range victims {
		m.abortInternal(v.tx, v.reason)
	}
}

// onHWEvent aborts home transactions that began on a failed CPU: "failure
// of an application server's processor while that server was working on
// the transaction" and TCP-primary failures both surface as the CPU-down
// of the processor coordinating the transaction. The facade may install
// finer-grained policies; this default covers transactions whose
// BEGIN-TRANSACTION processor died.
func (m *Monitor) onHWEvent(e hw.Event) {
	if e.Kind == hw.EventCPUUp {
		m.reseedTable(e.CPU)
		return
	}
	if e.Kind != hw.EventCPUDown {
		return
	}
	var victims []txid.ID
	m.mu.Lock()
	for id, t := range m.txs {
		if t.isHome && id.CPU == e.CPU {
			m.tabMu.Lock()
			st := m.stateLocked(id)
			m.tabMu.Unlock()
			if st == txid.StateActive || st == txid.StateEnding {
				victims = append(victims, id)
			}
		}
	}
	m.mu.Unlock()
	for _, id := range victims {
		//lint:allow spawnlifecycle fire-and-forget by design: abortInternal is idempotent and serialized per-transaction by tcb.protoMu; the in-doubt watcher re-drives any abort this goroutine fails to finish
		go m.abortInternal(id, fmt.Sprintf("processor %d failed", e.CPU))
	}
}

// Allow time for queued safe deliveries in tests without exporting the
// queue: WaitSafeQueueEmpty polls until empty or timeout.
func (m *Monitor) WaitSafeQueueEmpty(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if m.Stats().SafeQueueDepth == 0 {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}
