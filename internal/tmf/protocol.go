package tmf

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"encompass/internal/audit"
	"encompass/internal/obs"
	"encompass/internal/paxoscommit"
	"encompass/internal/txid"
)

// The selectable disposition protocols (Config.CommitProtocol).
const (
	// ProtoAbbreviated is the paper's abbreviated two-phase commit: the
	// disposition is a private fact of the home node's Monitor Audit Trail.
	// A participant that acknowledged phase one and then lost the home
	// node holds its locks until the network heals or an operator forces
	// the disposition — the availability hole the paper concedes.
	ProtoAbbreviated = "abbreviated"
	// ProtoFull2PC is presumed-nothing two-phase commit: every protocol
	// step (prepare intent, participant joins, votes, outcome) is force-
	// logged to a per-node decision log before it is acted on. Recovery
	// after a coordinator reload can consult the log — but a dead
	// coordinator still blocks its participants, exactly as in the paper.
	ProtoFull2PC = "full2pc"
	// ProtoPaxos is Gray & Lamport's Paxos Commit: the disposition is
	// decided by 2F+1 acceptor processes spread over the home node's
	// CPUs. Participants' phase-one votes double as ballot-0 accepts, and
	// any surviving node can learn (or force, via a recovery ballot) the
	// disposition from a majority of acceptors, so F failures — the
	// coordinator included — block nobody.
	ProtoPaxos = "paxos"
)

// ErrDispositionUnknown is returned by Learn/Resolve when the protocol
// cannot determine the transaction's disposition.
var ErrDispositionUnknown = errors.New("tmf: disposition not determined by protocol")

// DispositionProtocol is the pluggable commit/abort decision procedure.
// The Monitor drives it at fixed points of END-TRANSACTION and the abort
// path; the abbreviated implementation is a no-op at every point, keeping
// the seed's behavior byte-identical at the default setting.
//
// Call discipline (enforced by the Monitor): Begin and Join run on a node
// before it first transmits the transid to a child; VoteSelf runs after a
// node's own phase one succeeds (for Paxos this is the ballot-0 fast
// path, so a successful VoteSelf means the node's Prepared vote is chosen
// and no recovery ballot can decide differently); Decide runs only on the
// home node, with the proposed outcome, and returns the ACTUAL outcome —
// which may differ when a recovery ballot already chose the other way.
// Learn is read-only; Resolve may run recovery ballots to force a
// disposition. Learn and Resolve are callable from any node.
type DispositionProtocol interface {
	Name() string
	// NonBlocking reports whether the protocol can resolve an in-doubt
	// participant without the coordinator (the Monitor arms the in-doubt
	// watcher only for non-blocking protocols).
	NonBlocking() bool
	Begin(tx txid.ID) error
	Join(tx txid.ID, child string) error
	VoteSelf(tx txid.ID) error
	Decide(tx txid.ID, proposed audit.Outcome) (audit.Outcome, error)
	Learn(tx txid.ID) (o audit.Outcome, decider string, err error)
	Resolve(tx txid.ID) (o audit.Outcome, decider string, err error)
}

// newProtocol builds the configured protocol for a monitor. Paxos also
// starts the node's acceptor set.
func newProtocol(m *Monitor, name string, acceptors int) (DispositionProtocol, error) {
	switch name {
	case "", ProtoAbbreviated:
		return abbreviatedProto{}, nil
	case ProtoFull2PC:
		return &full2pcProto{
			m:        m,
			log:      audit.NewDecisionLog(m.node+".2pc", 0),
			outcomes: make(map[txid.ID]audit.Outcome),
		}, nil
	case ProtoPaxos:
		if acceptors == 0 {
			acceptors = 3
		}
		if acceptors%2 == 0 {
			return nil, fmt.Errorf("tmf: CommitAcceptors must be odd (2F+1), got %d", acceptors)
		}
		set, err := paxoscommit.Start(m.sys, acceptors, nil)
		if err != nil {
			return nil, fmt.Errorf("tmf: starting commit acceptors: %w", err)
		}
		m.acceptors = set
		return &paxosProto{m: m, n: acceptors, clients: make(map[string]*paxoscommit.Client)}, nil
	default:
		return nil, fmt.Errorf("tmf: unknown commit protocol %q", name)
	}
}

// --- abbreviated 2PC: the seed's protocol, all decision state in the MAT ---

type abbreviatedProto struct{}

func (abbreviatedProto) Name() string                  { return ProtoAbbreviated }
func (abbreviatedProto) NonBlocking() bool             { return false }
func (abbreviatedProto) Begin(txid.ID) error           { return nil }
func (abbreviatedProto) Join(txid.ID, string) error    { return nil }
func (abbreviatedProto) VoteSelf(txid.ID) error        { return nil }
func (abbreviatedProto) Decide(_ txid.ID, proposed audit.Outcome) (audit.Outcome, error) {
	return proposed, nil
}
func (abbreviatedProto) Learn(txid.ID) (audit.Outcome, string, error) {
	return 0, "", ErrDispositionUnknown
}
func (abbreviatedProto) Resolve(txid.ID) (audit.Outcome, string, error) {
	return 0, "", ErrDispositionUnknown
}

// --- full presumed-nothing 2PC: every step force-logged per node ---

type full2pcProto struct {
	m   *Monitor
	log *audit.DecisionLog

	mu       sync.Mutex
	outcomes map[txid.ID]audit.Outcome
}

func (p *full2pcProto) Name() string      { return ProtoFull2PC }
func (p *full2pcProto) NonBlocking() bool { return false }

// Begin force-logs the prepare intent: a presumed-nothing coordinator
// must be able to tell, after a reload, that the transaction entered the
// protocol (and so must be resolved, not presumed aborted).
func (p *full2pcProto) Begin(tx txid.ID) error {
	p.log.Append(audit.DecisionRecord{Tx: tx, Kind: audit.DecisionPrepare, Instance: p.m.node})
	return nil
}

func (p *full2pcProto) Join(tx txid.ID, child string) error {
	p.log.Append(audit.DecisionRecord{Tx: tx, Kind: audit.DecisionJoin, Instance: child})
	return nil
}

// VoteSelf force-logs this node's Prepared vote before it is sent: a
// presumed-nothing participant must remember across a reload that it is
// bound by an affirmative vote.
func (p *full2pcProto) VoteSelf(tx txid.ID) error {
	p.log.Append(audit.DecisionRecord{Tx: tx, Kind: audit.DecisionAccept, Instance: p.m.node, Value: paxoscommit.VotePrepared})
	return nil
}

func (p *full2pcProto) Decide(tx txid.ID, proposed audit.Outcome) (audit.Outcome, error) {
	v := uint8(2)
	if proposed == audit.OutcomeCommitted {
		v = 1
	}
	p.mu.Lock()
	if _, done := p.outcomes[tx]; !done {
		p.log.Append(audit.DecisionRecord{Tx: tx, Kind: audit.DecisionOutcome, Value: v})
		p.outcomes[tx] = proposed
	}
	got := p.outcomes[tx]
	p.mu.Unlock()
	return got, nil
}

// Learn answers from this node's own decision log — which is exactly why
// full 2PC is still blocking: a participant severed from the coordinator
// has no outcome record to read.
func (p *full2pcProto) Learn(tx txid.ID) (audit.Outcome, string, error) {
	p.mu.Lock()
	o, ok := p.outcomes[tx]
	p.mu.Unlock()
	if !ok {
		return 0, "", ErrDispositionUnknown
	}
	return o, "local 2pc decision log", nil
}

// Resolve cannot do better than Learn: full 2PC has no quorum to ask.
func (p *full2pcProto) Resolve(tx txid.ID) (audit.Outcome, string, error) {
	return p.Learn(tx)
}

// Log exposes the node's 2PC decision log (tmfctl, tests).
func (p *full2pcProto) Log() *audit.DecisionLog { return p.log }

// --- Paxos Commit ---

type paxosProto struct {
	m *Monitor
	n int // acceptor count (2F+1), uniform across the cluster

	mu      sync.Mutex
	clients map[string]*paxoscommit.Client // keyed by home node
}

func (p *paxosProto) Name() string      { return ProtoPaxos }
func (p *paxosProto) NonBlocking() bool { return true }

func (p *paxosProto) client(home string) *paxoscommit.Client {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.clients[home]
	if !ok {
		c = paxoscommit.NewClient(p.m.sys, home, p.n)
		p.clients[home] = c
	}
	return c
}

// Begin registers this node's own instance with the home acceptors. On
// the home node this is the coordinator's instance; on an intermediate
// node it re-registers an instance its parent already joined (idempotent
// at the acceptors).
func (p *paxosProto) Begin(tx txid.ID) error {
	return p.client(tx.Home).Join(tx, p.m.node)
}

func (p *paxosProto) Join(tx txid.ID, child string) error {
	return p.client(tx.Home).Join(tx, child)
}

// VoteSelf is the ballot-0 fast path: this node's phase-one vote IS the
// phase-2a of its consensus instance. Success means a majority of
// acceptors accepted Prepared at ballot 0 — the value is chosen, and by
// majority intersection no recovery ballot can choose differently.
func (p *paxosProto) VoteSelf(tx txid.ID) error {
	return p.client(tx.Home).Vote(tx, p.m.node, true)
}

// Decide computes the actual disposition. Proposing Committed is only
// legal after every instance voted Prepared at ballot 0 (the Monitor's
// End path guarantees it), so the outcome is already chosen and is simply
// recorded with the acceptors. Proposing Aborted runs a recovery ballot:
// instances whose votes landed are preserved (possibly flipping the
// outcome back to Committed — the caller must honor the returned value),
// free instances are driven to Aborted so the disposition is decided
// once, for every future learner.
func (p *paxosProto) Decide(tx txid.ID, proposed audit.Outcome) (audit.Outcome, error) {
	cl := p.client(tx.Home)
	if proposed == audit.OutcomeCommitted {
		cl.RecordOutcome(tx, audit.OutcomeCommitted)
		return audit.OutcomeCommitted, nil
	}
	o, _, err := cl.Resolve(tx)
	if err != nil {
		return 0, err
	}
	return o, nil
}

func (p *paxosProto) Learn(tx txid.ID) (audit.Outcome, string, error) {
	return p.client(tx.Home).Learn(tx)
}

func (p *paxosProto) Resolve(tx txid.ID) (audit.Outcome, string, error) {
	return p.client(tx.Home).Resolve(tx)
}

// --- Monitor-side protocol plumbing ---

// Protocol exposes the monitor's disposition protocol.
func (m *Monitor) Protocol() DispositionProtocol { return m.proto }

// ProtocolName returns the configured protocol's name.
func (m *Monitor) ProtocolName() string { return m.proto.Name() }

// AcceptorLogs returns the node's commit-acceptor decision logs under
// Paxos Commit, or the node's 2PC decision log under full 2PC (nil under
// the abbreviated protocol).
func (m *Monitor) AcceptorLogs() []*audit.DecisionLog {
	if m.acceptors != nil {
		return m.acceptors.Logs()
	}
	if p, ok := m.proto.(*full2pcProto); ok {
		return []*audit.DecisionLog{p.Log()}
	}
	return nil
}

// ensureProtoBegun registers the transaction with the protocol exactly
// once on this node (before its first child join).
func (m *Monitor) ensureProtoBegun(tx txid.ID) error {
	m.mu.Lock()
	t, ok := m.txs[tx]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s on %s", ErrUnknownTx, tx, m.node)
	}
	if t.protoBegun {
		m.mu.Unlock()
		return nil
	}
	m.mu.Unlock()
	if err := m.proto.Begin(tx); err != nil {
		return err
	}
	m.mu.Lock()
	t.protoBegun = true
	m.mu.Unlock()
	return nil
}

// protoActive reports whether the transaction entered the disposition
// protocol on this node (always false under the abbreviated protocol,
// which keeps the seed paths byte-identical).
func (m *Monitor) protoActive(tx txid.ID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.txs[tx]
	return ok && t.protoBegun
}

// InDoubt lists transactions this node holds locks for without knowing
// the disposition: non-home, phase one acknowledged, no local outcome.
// The T14 experiment and the DST non-blocking checker poll it.
func (m *Monitor) InDoubt() []txid.ID {
	var ids []txid.ID
	m.mu.Lock()
	for id, t := range m.txs {
		if !t.isHome && t.phase1Acked {
			ids = append(ids, id)
		}
	}
	m.mu.Unlock()
	out := ids[:0]
	for _, id := range ids {
		if _, resolved := m.mat.OutcomeOf(id); resolved {
			continue
		}
		if m.State(id).Terminal() {
			continue
		}
		out = append(out, id)
	}
	return out
}

// Disposition reports a transaction's outcome as this node can currently
// determine it: the local Monitor Audit Trail first, then the protocol's
// learner path. decider names the evidence.
func (m *Monitor) Disposition(tx txid.ID) (o audit.Outcome, decider string, known bool) {
	if o, ok := m.mat.OutcomeOf(tx); ok {
		return o, "monitor audit trail on " + m.node, true
	}
	if o, d, err := m.proto.Learn(tx); err == nil {
		return o, d, true
	}
	return 0, "", false
}

// in-doubt watcher pacing: the first probe is quick (an in-doubt
// participant under a dead coordinator should release its locks in
// fractions of a second, not minutes), then backs off; read-only learns
// escalate to a recovery ballot after resolveAfter probes.
const (
	watcherBaseDelay  = 120 * time.Millisecond
	watcherMaxDelay   = 2 * time.Second
	watcherResolveAt  = 3   // probe index at which Resolve (recovery ballots) starts
	watcherMaxProbes  = 150 // give up (the operator sweep will catch it)
)

// armInDoubtWatcher starts (once per transaction) a background resolver
// for an in-doubt participant under a non-blocking protocol: it polls the
// acceptors' learner path and, failing that, runs recovery ballots, then
// applies the learned disposition locally. This is what makes takeover
// never block on a dead coordinator.
func (m *Monitor) armInDoubtWatcher(tx txid.ID) {
	if !m.proto.NonBlocking() {
		return
	}
	m.watchMu.Lock()
	if m.watchers == nil {
		m.watchers = make(map[txid.ID]bool)
	}
	if m.watchers[tx] {
		m.watchMu.Unlock()
		return
	}
	m.watchers[tx] = true
	m.watchMu.Unlock()

	go func() {
		defer func() {
			m.watchMu.Lock()
			delete(m.watchers, tx)
			m.watchMu.Unlock()
		}()
		delay := watcherBaseDelay
		for probe := 0; probe < watcherMaxProbes; probe++ {
			time.Sleep(delay)
			if delay < watcherMaxDelay {
				delay *= 2
			}
			if _, resolved := m.mat.OutcomeOf(tx); resolved {
				return
			}
			m.mu.Lock()
			t, ok := m.txs[tx]
			if !ok {
				m.mu.Unlock()
				return // forgotten: resolved and left the system
			}
			stillBound := t.phase1Acked || t.isHome
			m.mu.Unlock()
			if !stillBound || m.State(tx).Terminal() {
				return
			}
			o, decider, err := m.proto.Learn(tx)
			if err != nil && probe >= watcherResolveAt {
				o, decider, err = m.proto.Resolve(tx)
			}
			if err != nil {
				continue
			}
			m.applyLearnedDisposition(tx, o, decider)
			return
		}
	}()
}

// applyLearnedDisposition applies a disposition obtained from the
// protocol's learner path: the commit path is identical to receiving the
// home node's safe-delivery ENDED; the abort path clears the phase-one
// bond first, exactly like an inbound abort from the home node.
func (m *Monitor) applyLearnedDisposition(tx txid.ID, o audit.Outcome, decider string) {
	m.tracer.Record(obs.Event{Tx: tx, Kind: obs.EvOutcome, Node: m.node,
		CPU: m.tmpCPUOrFirstUp(), Detail: "learned " + o.String() + " via " + decider})
	if o == audit.OutcomeCommitted {
		m.applyEnded(tx)
		return
	}
	m.mu.Lock()
	if t, ok := m.txs[tx]; ok {
		t.phase1Acked = false
	}
	m.mu.Unlock()
	m.abortInternal(tx, "disposition learned from commit acceptors: aborted ("+decider+")")
}
