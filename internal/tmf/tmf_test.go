package tmf

import (
	"context"
	"errors"
	"testing"
	"time"

	"encompass/internal/audit"
	"encompass/internal/dbfile"
	"encompass/internal/discproc"
	"encompass/internal/disk"
	"encompass/internal/expand"
	"encompass/internal/hw"
	"encompass/internal/msg"
	"encompass/internal/txid"
)

// testNode bundles one simulated node: hardware, message system, volume,
// DISCPROCESS, AUDITPROCESS and TMF monitor.
type testNode struct {
	name  string
	hw    *hw.Node
	sys   *msg.System
	vol   *disk.Volume
	trail *audit.Trail
	disc  *discproc.Proc
	mon   *Monitor
}

// testCluster builds nodes connected in a line topology a-b-c-...
func testCluster(t *testing.T, names ...string) (map[string]*testNode, *expand.Network) {
	t.Helper()
	return testClusterProto(t, "", 0, names...)
}

// testClusterProto is testCluster with an explicit disposition protocol.
func testClusterProto(t *testing.T, proto string, acceptors int, names ...string) (map[string]*testNode, *expand.Network) {
	t.Helper()
	net := expand.NewNetwork(0)
	nodes := make(map[string]*testNode)
	for _, name := range names {
		n, err := hw.NewNode(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		sys := msg.NewSystem(n)
		net.Attach(sys)
		tn := &testNode{name: name, hw: n, sys: sys}
		tn.vol = disk.NewVolume("v-" + name)
		tn.trail = audit.NewTrail("a-"+name, 0)
		if _, err := audit.StartProcess(sys, "audit", 0, 1, tn.trail); err != nil {
			t.Fatal(err)
		}
		tn.mon, err = New(Config{System: sys, Network: net, TMPPrimaryCPU: 0, TMPBackupCPU: 1,
			CommitProtocol: proto, CommitAcceptors: acceptors})
		if err != nil {
			t.Fatal(err)
		}
		tn.disc, err = discproc.Start(sys, "disc", 0, 1, discproc.Config{
			Volume:        tn.vol,
			Audit:         audit.NewClient(sys, "audit"),
			OnParticipate: tn.mon.RegisterLocalVolume,
			CacheSize:     32,
		})
		if err != nil {
			t.Fatal(err)
		}
		tn.mon.AddVolume(VolumeInfo{Name: tn.vol.Name(), DiscName: "disc", AuditName: "audit"})
		nodes[name] = tn
	}
	for i := 0; i+1 < len(names); i++ {
		if err := net.AddLink(names[i], names[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	// Create a standard file on every node.
	for _, tn := range nodes {
		tn.call(t, tn.name, discproc.KindCreate, discproc.CreateReq{File: "data", Org: dbfile.KeySequenced})
	}
	return nodes, net
}

// call issues a disc request to destNode's DISCPROCESS from this node.
func (tn *testNode) call(t *testing.T, destNode, kind string, payload any) msg.Message {
	t.Helper()
	r, err := tn.tryCall(destNode, kind, payload)
	if err != nil {
		t.Fatalf("%s→%s %s: %v", tn.name, destNode, kind, err)
	}
	return r
}

func (tn *testNode) tryCall(destNode, kind string, payload any) (msg.Message, error) {
	addr := msg.Addr{Name: "disc"}
	if destNode != tn.name {
		addr.Node = destNode
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return tn.sys.ClientCall(ctx, 3, addr, kind, payload)
}

func (tn *testNode) insert(t *testing.T, destNode string, tx txid.ID, key, val string) {
	t.Helper()
	tn.call(t, destNode, discproc.KindInsert, discproc.WriteReq{Tx: tx, File: "data", Key: key, Val: []byte(val)})
}

func (tn *testNode) read(t *testing.T, destNode, key string) (string, error) {
	r, err := tn.tryCall(destNode, discproc.KindRead, discproc.ReadReq{File: "data", Key: key})
	if err != nil {
		return "", err
	}
	return string(r.Payload.(discproc.ReadResp).Val), nil
}

func (tn *testNode) lockedRead(t *testing.T, destNode string, tx txid.ID, key string) (string, error) {
	r, err := tn.tryCall(destNode, discproc.KindRead, discproc.ReadReq{Tx: tx, File: "data", Key: key, WithLock: true, LockTimeout: 100 * time.Millisecond})
	if err != nil {
		return "", err
	}
	return string(r.Payload.(discproc.ReadResp).Val), nil
}

func (tn *testNode) update(t *testing.T, destNode string, tx txid.ID, key, val string) error {
	_, err := tn.tryCall(destNode, discproc.KindUpdate, discproc.WriteReq{Tx: tx, File: "data", Key: key, Val: []byte(val)})
	return err
}

func TestSingleNodeCommit(t *testing.T) {
	nodes, _ := testCluster(t, "a")
	a := nodes["a"]
	tx, err := a.mon.Begin(2)
	if err != nil {
		t.Fatal(err)
	}
	if tx.Home != "a" || tx.CPU != 2 || tx.Seq != 1 {
		t.Errorf("transid = %+v", tx)
	}
	if st := a.mon.State(tx); st != txid.StateActive {
		t.Fatalf("state after begin = %v", st)
	}
	a.insert(t, "a", tx, "k1", "v1")
	if err := a.mon.End(tx); err != nil {
		t.Fatalf("End: %v", err)
	}
	if st := a.mon.State(tx); st != txid.StateEnded {
		t.Errorf("state after commit = %v", st)
	}
	if o, ok := a.mon.Outcome(tx); !ok || o != audit.OutcomeCommitted {
		t.Errorf("outcome = %v, %v", o, ok)
	}
	// Audit records were forced at phase one.
	imgs := a.trail.ImagesFor(tx)
	if len(imgs) != 1 {
		t.Errorf("durable images = %d, want 1", len(imgs))
	}
	// Locks released: another transaction can lock the record immediately.
	tx2, _ := a.mon.Begin(2)
	if _, err := a.lockedRead(t, "a", tx2, "k1"); err != nil {
		t.Errorf("lock after commit: %v", err)
	}
	a.mon.Abort(tx2, "test cleanup")
}

func TestSingleNodeVoluntaryAbort(t *testing.T) {
	nodes, _ := testCluster(t, "a")
	a := nodes["a"]

	tx1, _ := a.mon.Begin(0)
	a.insert(t, "a", tx1, "k", "orig")
	if err := a.mon.End(tx1); err != nil {
		t.Fatal(err)
	}

	tx2, _ := a.mon.Begin(1)
	if _, err := a.lockedRead(t, "a", tx2, "k"); err != nil {
		t.Fatal(err)
	}
	if err := a.update(t, "a", tx2, "k", "dirty"); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.read(t, "a", "k"); v != "dirty" {
		t.Fatalf("pre-abort value = %q", v)
	}
	if err := a.mon.Abort(tx2, "user request"); err != nil {
		t.Fatal(err)
	}
	if st := a.mon.State(tx2); st != txid.StateAborted {
		t.Errorf("state = %v, want aborted", st)
	}
	if v, _ := a.read(t, "a", "k"); v != "orig" {
		t.Errorf("value after backout = %q, want orig", v)
	}
	if o, _ := a.mon.Outcome(tx2); o != audit.OutcomeAborted {
		t.Errorf("outcome = %v", o)
	}
	// END of an aborted transaction is rejected.
	if err := a.mon.End(tx2); !errors.Is(err, ErrAborted) {
		t.Errorf("End of aborted tx err = %v, want ErrAborted", err)
	}
}

func TestAbortReleasesLocks(t *testing.T) {
	nodes, _ := testCluster(t, "a")
	a := nodes["a"]
	tx1, _ := a.mon.Begin(0)
	a.insert(t, "a", tx1, "k", "v")
	a.mon.Abort(tx1, "test")
	tx2, _ := a.mon.Begin(0)
	a.insert(t, "a", tx2, "k", "v2") // would block forever if tx1's lock leaked
	if err := a.mon.End(tx2); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedCommitTwoNodes(t *testing.T) {
	nodes, net := testCluster(t, "a", "b")
	a, b := nodes["a"], nodes["b"]

	tx, _ := a.mon.Begin(0)
	if err := a.mon.NoteRemoteSend(tx, "b"); err != nil {
		t.Fatal(err)
	}
	// The remote begin broadcast the transid on b.
	if st := b.mon.State(tx); st != txid.StateActive {
		t.Fatalf("state on b = %v, want active", st)
	}
	a.insert(t, "a", tx, "local", "la")
	a.insert(t, "b", tx, "remote", "rb")

	framesBefore := net.Stats().Frames
	if err := a.mon.End(tx); err != nil {
		t.Fatalf("distributed End: %v", err)
	}
	if net.Stats().Frames == framesBefore {
		t.Error("distributed commit exchanged no network frames")
	}
	// Both nodes recorded the commit and reached ended.
	for _, n := range []*testNode{a, b} {
		if o, ok := n.mon.Outcome(tx); !ok || o != audit.OutcomeCommitted {
			t.Errorf("%s outcome = %v, %v", n.name, o, ok)
		}
		if st := n.mon.State(tx); st != txid.StateEnded {
			t.Errorf("%s state = %v", n.name, st)
		}
	}
	// b's audit records were forced by phase one.
	imgs := b.trail.ImagesFor(tx)
	if len(imgs) != 1 {
		t.Errorf("b durable images = %d, want 1", len(imgs))
	}
	// b's locks released: a fresh local transaction on b can take them.
	txb, _ := b.mon.Begin(0)
	if _, err := b.lockedRead(t, "b", txb, "remote"); err != nil {
		t.Errorf("lock on b after distributed commit: %v", err)
	}
	b.mon.Abort(txb, "cleanup")
}

func TestDistributedAbortBacksOutAllNodes(t *testing.T) {
	nodes, _ := testCluster(t, "a", "b")
	a, b := nodes["a"], nodes["b"]

	// Committed baseline on b.
	setup, _ := b.mon.Begin(0)
	b.insert(t, "b", setup, "k", "orig")
	if err := b.mon.End(setup); err != nil {
		t.Fatal(err)
	}

	tx, _ := a.mon.Begin(0)
	a.mon.NoteRemoteSend(tx, "b")
	if _, err := a.lockedRead(t, "b", tx, "k"); err != nil {
		t.Fatal(err)
	}
	if err := a.update(t, "b", tx, "k", "dirty"); err != nil {
		t.Fatal(err)
	}
	a.insert(t, "a", tx, "ka", "va")

	a.mon.Abort(tx, "user abort")
	if !a.mon.WaitSafeQueueEmpty(time.Second) {
		t.Fatal("safe queue did not drain")
	}
	waitFor(t, func() bool { return b.mon.State(tx) == txid.StateAborted })

	if v, _ := b.read(t, "b", "k"); v != "orig" {
		t.Errorf("b value after backout = %q, want orig", v)
	}
	if _, err := a.read(t, "a", "ka"); err == nil {
		t.Error("a's insert survived the abort")
	}
	for _, n := range []*testNode{a, b} {
		if o, _ := n.mon.Outcome(tx); o != audit.OutcomeAborted {
			t.Errorf("%s outcome = %v", n.name, o)
		}
	}
}

func TestTransitiveCommitChain(t *testing.T) {
	// The paper's example: a TCP on node 1 SENDs to a server on node 2
	// which updates a record on node 3. Node 1 only knows about node 2;
	// node 2 knows about node 3. Phase one and two flow transitively.
	nodes, _ := testCluster(t, "a", "b", "c")
	a, b, c := nodes["a"], nodes["b"], nodes["c"]

	tx, _ := a.mon.Begin(0)
	if err := a.mon.NoteRemoteSend(tx, "b"); err != nil {
		t.Fatal(err)
	}
	// b's "server" forwards to c.
	if err := b.mon.NoteRemoteSend(tx, "c"); err != nil {
		t.Fatal(err)
	}
	b.insert(t, "c", tx, "k", "on-c")

	if err := a.mon.End(tx); err != nil {
		t.Fatalf("chain commit: %v", err)
	}
	waitFor(t, func() bool { return c.mon.State(tx) == txid.StateEnded })
	if v, _ := c.read(t, "c", "k"); v != "on-c" {
		t.Errorf("c value = %q", v)
	}
	if o, ok := c.mon.Outcome(tx); !ok || o != audit.OutcomeCommitted {
		t.Errorf("c outcome = %v, %v", o, ok)
	}
}

func TestUnilateralAbortForcesConsensus(t *testing.T) {
	// "Until a non-home node has replied affirmatively to the phase-one
	// message, it can unilaterally abort the transaction, and then force
	// network consensus to abort by replying negatively to the phase-one
	// message."
	nodes, _ := testCluster(t, "a", "b")
	a, b := nodes["a"], nodes["b"]

	tx, _ := a.mon.Begin(0)
	a.mon.NoteRemoteSend(tx, "b")
	a.insert(t, "b", tx, "k", "v")
	a.insert(t, "a", tx, "ka", "va")

	if err := b.mon.Abort(tx, "unilateral"); err != nil {
		t.Fatal(err)
	}
	err := a.mon.End(tx)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("End after unilateral abort = %v, want ErrAborted", err)
	}
	// Everything backed out everywhere.
	if _, err := a.read(t, "a", "ka"); err == nil {
		t.Error("a insert survived")
	}
	if _, err := b.read(t, "b", "k"); err == nil {
		t.Error("b insert survived")
	}
	for _, n := range []*testNode{a, b} {
		if o, _ := n.mon.Outcome(tx); o != audit.OutcomeAborted {
			t.Errorf("%s outcome = %v", n.name, o)
		}
	}
}

func TestPartitionBeforePhase1AbortsBothSides(t *testing.T) {
	nodes, net := testCluster(t, "a", "b")
	a, b := nodes["a"], nodes["b"]

	tx, _ := a.mon.Begin(0)
	a.mon.NoteRemoteSend(tx, "b")
	a.insert(t, "b", tx, "k", "v")

	net.Partition("b")
	// b's watcher sees the source unreachable pre-ack and aborts.
	waitFor(t, func() bool { return b.mon.State(tx) == txid.StateAborted })
	// a's End cannot reach b for phase one; the commit attempt fails.
	if err := a.mon.End(tx); !errors.Is(err, ErrAborted) {
		t.Fatalf("End across partition = %v, want ErrAborted", err)
	}
	if _, err := b.read(t, "b", "k"); err == nil {
		t.Error("b insert survived partition abort")
	}
	// The decision is uniform: aborted on both sides.
	for _, n := range []*testNode{a, b} {
		if o, _ := n.mon.Outcome(tx); o != audit.OutcomeAborted {
			t.Errorf("%s outcome = %v", n.name, o)
		}
	}
	net.HealAll()
}

func TestInDoubtHoldsLocksUntilHeal(t *testing.T) {
	// Partition injected between phase one and the commit record: b is
	// in doubt. It must hold the transaction's locks until communication
	// is restored, then learn the disposition via safe-delivery.
	nodes, net := testCluster(t, "a", "b")
	a, b := nodes["a"], nodes["b"]

	tx, _ := a.mon.Begin(0)
	a.mon.NoteRemoteSend(tx, "b")
	a.insert(t, "b", tx, "k", "v")

	a.mon.SetPhase1Hook(func(txid.ID) { net.Partition("b") })
	if err := a.mon.End(tx); err != nil {
		t.Fatalf("End: %v (commit must succeed: phase one completed)", err)
	}
	a.mon.SetPhase1Hook(nil)

	// b acknowledged phase one: it may not abort unilaterally now.
	if err := b.mon.Abort(tx, "too late"); !errors.Is(err, ErrInDoubt) {
		t.Errorf("in-doubt abort err = %v, want ErrInDoubt", err)
	}
	// b still holds the lock.
	txb, _ := b.mon.Begin(0)
	if _, err := b.lockedRead(t, "b", txb, "k"); err == nil {
		t.Error("in-doubt lock was not held")
	}
	b.mon.Abort(txb, "cleanup")

	// Heal: the queued safe-delivery phase two reaches b.
	net.HealAll()
	waitFor(t, func() bool { return b.mon.State(tx) == txid.StateEnded })
	if o, _ := b.mon.Outcome(tx); o != audit.OutcomeCommitted {
		t.Errorf("b outcome after heal = %v", o)
	}
	if v, _ := b.read(t, "b", "k"); v != "v" {
		t.Errorf("b value = %q", v)
	}
}

func TestManualOverrideOfInDoubt(t *testing.T) {
	// The paper's manual override: operator determines disposition on the
	// home node and forces it on the severed node with the TMF utility.
	nodes, net := testCluster(t, "a", "b")
	a, b := nodes["a"], nodes["b"]

	tx, _ := a.mon.Begin(0)
	a.mon.NoteRemoteSend(tx, "b")
	a.insert(t, "b", tx, "k", "v")
	a.mon.SetPhase1Hook(func(txid.ID) { net.Partition("b") })
	if err := a.mon.End(tx); err != nil {
		t.Fatal(err)
	}
	a.mon.SetPhase1Hook(nil)

	// Step 1 (on home node): determine disposition.
	if o, ok := a.mon.Outcome(tx); !ok || o != audit.OutcomeCommitted {
		t.Fatalf("home disposition = %v, %v", o, ok)
	}
	// Step 3 (on severed node): force it.
	if err := b.mon.ForceDisposition(tx, true); err != nil {
		t.Fatal(err)
	}
	if st := b.mon.State(tx); st != txid.StateEnded {
		t.Errorf("b state after force = %v", st)
	}
	if v, _ := b.read(t, "b", "k"); v != "v" {
		t.Errorf("b value = %q", v)
	}
	net.HealAll()
}

func TestCPUFailureAbortsItsTransactions(t *testing.T) {
	nodes, _ := testCluster(t, "a")
	a := nodes["a"]
	// Baseline record.
	setup, _ := a.mon.Begin(0)
	a.insert(t, "a", setup, "k", "orig")
	a.mon.End(setup)

	// tx begun on CPU 2 updates the record, then CPU 2 fails.
	tx, _ := a.mon.Begin(2)
	if _, err := a.lockedRead(t, "a", tx, "k"); err != nil {
		t.Fatal(err)
	}
	if err := a.update(t, "a", tx, "k", "dirty"); err != nil {
		t.Fatal(err)
	}
	a.hw.FailCPU(2)
	waitFor(t, func() bool { return a.mon.State(tx) == txid.StateAborted })
	if v, _ := a.read(t, "a", "k"); v != "orig" {
		t.Errorf("value after failure abort = %q, want orig", v)
	}
	// Unaffected transactions keep running.
	tx2, _ := a.mon.Begin(1)
	a.insert(t, "a", tx2, "k2", "v2")
	if err := a.mon.End(tx2); err != nil {
		t.Errorf("unaffected tx failed: %v", err)
	}
}

func TestStateBroadcastReachesAllCPUs(t *testing.T) {
	nodes, _ := testCluster(t, "a")
	a := nodes["a"]
	tx, _ := a.mon.Begin(0)
	for cpu := 0; cpu < 4; cpu++ {
		if st := a.mon.StateOnCPU(tx, cpu); st != txid.StateActive {
			t.Errorf("cpu %d state = %v, want active", cpu, st)
		}
	}
	a.insert(t, "a", tx, "k", "v")
	a.mon.End(tx)
	for cpu := 0; cpu < 4; cpu++ {
		if st := a.mon.StateOnCPU(tx, cpu); st != txid.StateEnded {
			t.Errorf("cpu %d state = %v, want ended", cpu, st)
		}
	}
	// "Once the 'ended' state has completed, the transid leaves the
	// system."
	a.mon.Forget(tx)
	if st := a.mon.State(tx); st != txid.StateNone {
		t.Errorf("state after Forget = %v", st)
	}
}

func TestFigure3Conformance(t *testing.T) {
	nodes, _ := testCluster(t, "a", "b")
	a, b := nodes["a"], nodes["b"]
	// A mixed workload: commits, aborts, distributed commits, failures.
	for i := 0; i < 10; i++ {
		tx, _ := a.mon.Begin(i % 4)
		a.insert(t, "a", tx, "k"+string(rune('0'+i)), "v")
		if i%3 == 0 {
			a.mon.Abort(tx, "mixed workload")
		} else if i%3 == 1 {
			a.mon.End(tx)
		} else {
			a.mon.NoteRemoteSend(tx, "b")
			a.insert(t, "b", tx, "k"+string(rune('0'+i)), "v")
			a.mon.End(tx)
		}
	}
	for _, n := range []*testNode{a, b} {
		all, violations := n.mon.Transitions()
		if len(all) == 0 {
			t.Errorf("%s recorded no transitions", n.name)
		}
		if len(violations) != 0 {
			t.Errorf("%s: %d Figure-3 violations: %+v", n.name, len(violations), violations)
		}
	}
}

func TestQueryRemoteDisposition(t *testing.T) {
	nodes, _ := testCluster(t, "a", "b")
	a, b := nodes["a"], nodes["b"]
	tx, _ := a.mon.Begin(0)
	a.insert(t, "a", tx, "k", "v")
	a.mon.End(tx)
	resp, err := b.mon.QueryRemote("a", tx)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Known || !resp.Committed {
		t.Errorf("query = %+v, want known committed", resp)
	}
}

func TestDoubleAbortIdempotent(t *testing.T) {
	nodes, _ := testCluster(t, "a")
	a := nodes["a"]
	tx, _ := a.mon.Begin(0)
	a.insert(t, "a", tx, "k", "v")
	if err := a.mon.Abort(tx, "first"); err != nil {
		t.Fatal(err)
	}
	if err := a.mon.Abort(tx, "second"); err != nil {
		t.Fatal(err)
	}
	st := a.mon.Stats()
	if st.Aborted != 1 {
		t.Errorf("aborted count = %d, want 1", st.Aborted)
	}
}

func TestEndOnNonHomeNodeRejected(t *testing.T) {
	nodes, _ := testCluster(t, "a", "b")
	a, b := nodes["a"], nodes["b"]
	tx, _ := a.mon.Begin(0)
	a.mon.NoteRemoteSend(tx, "b")
	if err := b.mon.End(tx); !errors.Is(err, ErrNotHome) {
		t.Errorf("End on non-home err = %v, want ErrNotHome", err)
	}
	a.mon.Abort(tx, "cleanup")
}

func TestBeginOnDownCPU(t *testing.T) {
	nodes, _ := testCluster(t, "a")
	a := nodes["a"]
	a.hw.FailCPU(3)
	if _, err := a.mon.Begin(3); !errors.Is(err, hw.ErrCPUDown) {
		t.Errorf("err = %v, want ErrCPUDown", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	nodes, _ := testCluster(t, "a")
	a := nodes["a"]
	tx, _ := a.mon.Begin(0)
	a.insert(t, "a", tx, "k", "v")
	a.mon.End(tx)
	tx2, _ := a.mon.Begin(0)
	a.insert(t, "a", tx2, "k2", "v")
	a.mon.Abort(tx2, "test")
	st := a.mon.Stats()
	if st.Begun != 2 || st.Committed != 1 || st.Aborted != 1 || st.Backouts != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BroadcastMsgs == 0 {
		t.Error("no broadcasts counted")
	}
}

func TestNoteRemoteSendUnreachable(t *testing.T) {
	nodes, net := testCluster(t, "a", "b")
	a := nodes["a"]
	net.Partition("b")
	tx, _ := a.mon.Begin(0)
	if err := a.mon.NoteRemoteSend(tx, "b"); !errors.Is(err, ErrNodeUnreachable) {
		t.Errorf("err = %v, want ErrNodeUnreachable", err)
	}
	net.HealAll()
	a.mon.Abort(tx, "cleanup")
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}
