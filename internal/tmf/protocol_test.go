package tmf

import (
	"errors"
	"testing"
	"time"

	"encompass/internal/audit"
	"encompass/internal/expand"
	"encompass/internal/hw"
	"encompass/internal/msg"
	"encompass/internal/txid"
)

// protoConfigs enumerates the selectable disposition protocols for the
// equivalence tests: each must produce the same committed/aborted outcomes
// on the same workload.
var protoConfigs = []struct {
	name      string
	acceptors int
}{
	{ProtoAbbreviated, 0},
	{ProtoFull2PC, 0},
	{ProtoPaxos, 3},
}

func TestDistributedCommitEveryProtocol(t *testing.T) {
	for _, pc := range protoConfigs {
		t.Run(pc.name, func(t *testing.T) {
			nodes, _ := testClusterProto(t, pc.name, pc.acceptors, "a", "b")
			a, b := nodes["a"], nodes["b"]

			tx, _ := a.mon.Begin(0)
			if err := a.mon.NoteRemoteSend(tx, "b"); err != nil {
				t.Fatal(err)
			}
			a.insert(t, "a", tx, "local", "la")
			a.insert(t, "b", tx, "remote", "rb")
			if err := a.mon.End(tx); err != nil {
				t.Fatalf("End under %s: %v", pc.name, err)
			}
			for _, n := range []*testNode{a, b} {
				if o, ok := n.mon.Outcome(tx); !ok || o != audit.OutcomeCommitted {
					t.Errorf("%s outcome = %v, %v", n.name, o, ok)
				}
				waitFor(t, func() bool { return n.mon.State(tx) == txid.StateEnded })
			}
			// Locks released on the remote node.
			txb, _ := b.mon.Begin(0)
			if _, err := b.lockedRead(t, "b", txb, "remote"); err != nil {
				t.Errorf("lock on b after commit: %v", err)
			}
			b.mon.Abort(txb, "cleanup")
		})
	}
}

func TestUnilateralAbortEveryProtocol(t *testing.T) {
	// A participant that has not acknowledged phase one aborts
	// unilaterally; END must fail and every protocol must settle on
	// Aborted — for the logged protocols, durably in their decision state.
	for _, pc := range protoConfigs {
		t.Run(pc.name, func(t *testing.T) {
			nodes, _ := testClusterProto(t, pc.name, pc.acceptors, "a", "b")
			a, b := nodes["a"], nodes["b"]

			tx, _ := a.mon.Begin(0)
			a.mon.NoteRemoteSend(tx, "b")
			a.insert(t, "b", tx, "k", "v")
			if err := b.mon.Abort(tx, "unilateral"); err != nil {
				t.Fatal(err)
			}
			if err := a.mon.End(tx); !errors.Is(err, ErrAborted) {
				t.Fatalf("End after unilateral abort = %v, want ErrAborted", err)
			}
			for _, n := range []*testNode{a, b} {
				if o, _ := n.mon.Outcome(tx); o != audit.OutcomeAborted {
					t.Errorf("%s outcome = %v", n.name, o)
				}
			}
			if pc.name == ProtoPaxos {
				// The recovery ballot run by the home node's abort drove the
				// acceptors to a durable Aborted disposition: any node can
				// learn it.
				o, decider, err := b.mon.Protocol().Learn(tx)
				if err != nil || o != audit.OutcomeAborted {
					t.Errorf("acceptor disposition = %v (%s), %v", o, decider, err)
				}
			}
		})
	}
}

func TestFull2PCDecisionLogRecordsProtocol(t *testing.T) {
	nodes, _ := testClusterProto(t, ProtoFull2PC, 0, "a", "b")
	a := nodes["a"]
	tx, _ := a.mon.Begin(0)
	a.mon.NoteRemoteSend(tx, "b")
	a.insert(t, "b", tx, "k", "v")
	if err := a.mon.End(tx); err != nil {
		t.Fatal(err)
	}
	logs := a.mon.AcceptorLogs()
	if len(logs) != 1 {
		t.Fatalf("full2pc AcceptorLogs = %d logs, want 1", len(logs))
	}
	kinds := map[audit.DecisionKind]int{}
	for _, r := range logs[0].Records() {
		if r.Tx == tx {
			kinds[r.Kind]++
		}
	}
	for _, k := range []audit.DecisionKind{audit.DecisionPrepare, audit.DecisionJoin, audit.DecisionAccept, audit.DecisionOutcome} {
		if kinds[k] == 0 {
			t.Errorf("no %s record in the 2pc decision log (have %v)", k, kinds)
		}
	}
	if n, err := logs[0].VerifyChain(); err != nil {
		t.Errorf("decision log chain: verified %d then: %v", n, err)
	}
}

func TestPaxosAcceptorLogsRecordDecision(t *testing.T) {
	nodes, _ := testClusterProto(t, ProtoPaxos, 3, "a", "b")
	a := nodes["a"]
	tx, _ := a.mon.Begin(0)
	a.mon.NoteRemoteSend(tx, "b")
	a.insert(t, "b", tx, "k", "v")
	if err := a.mon.End(tx); err != nil {
		t.Fatal(err)
	}
	logs := a.mon.AcceptorLogs()
	if len(logs) != 3 {
		t.Fatalf("paxos AcceptorLogs = %d logs, want 3", len(logs))
	}
	withOutcome := 0
	for _, l := range logs {
		if n, err := l.VerifyChain(); err != nil {
			t.Errorf("%s: verified %d then: %v", l.Name(), n, err)
		}
		for _, r := range l.Records() {
			if r.Tx == tx && r.Kind == audit.DecisionOutcome {
				withOutcome++
				break
			}
		}
	}
	if withOutcome < 2 {
		t.Errorf("outcome recorded on %d/3 acceptors, want a majority", withOutcome)
	}
}

func TestQueryReportsProtocolAndDecider(t *testing.T) {
	nodes, _ := testClusterProto(t, ProtoPaxos, 3, "a", "b")
	a, b := nodes["a"], nodes["b"]
	tx, _ := a.mon.Begin(0)
	a.insert(t, "a", tx, "k", "v")
	if err := a.mon.End(tx); err != nil {
		t.Fatal(err)
	}
	resp, err := b.mon.QueryRemote("a", tx)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Known || !resp.Committed || resp.Protocol != ProtoPaxos || resp.Decider == "" {
		t.Errorf("query = %+v, want known committed with protocol/decider", resp)
	}
}

func TestUnknownProtocolRejected(t *testing.T) {
	n, _ := hw.NewNode("x", 4)
	sys := msg.NewSystem(n)
	net := expand.NewNetwork(0)
	net.Attach(sys)
	if _, err := New(Config{System: sys, Network: net, TMPPrimaryCPU: 0, TMPBackupCPU: 1, CommitProtocol: "bogus"}); err == nil {
		t.Error("unknown protocol accepted")
	}
	n2, _ := hw.NewNode("y", 4)
	sys2 := msg.NewSystem(n2)
	net.Attach(sys2)
	if _, err := New(Config{System: sys2, Network: net, TMPPrimaryCPU: 0, TMPBackupCPU: 1, CommitProtocol: ProtoPaxos, CommitAcceptors: 4}); err == nil {
		t.Error("even acceptor count accepted")
	}
}

func TestPaxosCoordinatorKillNonBlocking(t *testing.T) {
	// The tentpole scenario: the coordinator dies between phase one and
	// the commit record. Under Paxos Commit the participant's in-doubt
	// watcher learns the disposition from the acceptor quorum (2 of 3
	// survive the coordinator CPU's death) and releases its locks while
	// the coordinator is still dead.
	nodes, _ := testClusterProto(t, ProtoPaxos, 3, "a", "b")
	a, b := nodes["a"], nodes["b"]

	tx, _ := a.mon.Begin(2)
	if err := a.mon.NoteRemoteSend(tx, "b"); err != nil {
		t.Fatal(err)
	}
	a.insert(t, "b", tx, "k", "v")

	park := make(chan struct{})
	a.mon.SetPhase1Hook(func(txid.ID) {
		a.hw.FailCPU(0) // the TMP primary: the "coordinator" CPU
		<-park          // the END caller stays dead until released
	})
	endErr := make(chan error, 1)
	go func() { endErr <- a.mon.End(tx) }()

	// While the coordinator is parked mid-protocol, b resolves on its own.
	waitFor(t, func() bool { return b.mon.State(tx) == txid.StateEnded })
	if o, ok := a.mon.Outcome(tx); ok {
		t.Errorf("home node already has outcome %v; the disposition must have come from the acceptors", o)
	}
	if o, ok := b.mon.Outcome(tx); !ok || o != audit.OutcomeCommitted {
		t.Fatalf("b outcome while coordinator dead = %v, %v", o, ok)
	}
	// b's locks are released, coordinator still dead.
	txb, _ := b.mon.Begin(0)
	if _, err := b.lockedRead(t, "b", txb, "k"); err != nil {
		t.Errorf("lock on b while coordinator dead: %v", err)
	}
	b.mon.Abort(txb, "cleanup")
	if v, _ := b.read(t, "b", "k"); v != "v" {
		t.Errorf("b value = %q", v)
	}

	// Release the coordinator: its END must agree with what b learned.
	close(park)
	a.mon.SetPhase1Hook(nil)
	if err := <-endErr; err != nil {
		t.Fatalf("resumed End: %v", err)
	}
	if o, _ := a.mon.Outcome(tx); o != audit.OutcomeCommitted {
		t.Errorf("a outcome = %v", o)
	}
}

func TestAbbreviatedBlockingRegression(t *testing.T) {
	// Pins the paper's availability hole, which motivates this PR: under
	// the abbreviated protocol a participant that acknowledged phase one
	// holds its locks for as long as the coordinator stays dead — no
	// watcher, no quorum to ask — until an operator forces a disposition.
	nodes, _ := testClusterProto(t, ProtoAbbreviated, 0, "a", "b")
	a, b := nodes["a"], nodes["b"]

	tx, _ := a.mon.Begin(0)
	a.mon.NoteRemoteSend(tx, "b")
	a.insert(t, "b", tx, "k", "v")

	park := make(chan struct{})
	a.mon.SetPhase1Hook(func(txid.ID) { <-park })
	endErr := make(chan error, 1)
	go func() { endErr <- a.mon.End(tx) }()

	waitFor(t, func() bool { return len(b.mon.InDoubt()) == 1 })
	// b is bound by its phase-one reply: it may not abort, and the lock
	// stays held.
	if err := b.mon.Abort(tx, "too late"); !errors.Is(err, ErrInDoubt) {
		t.Fatalf("in-doubt abort err = %v, want ErrInDoubt", err)
	}
	txb, _ := b.mon.Begin(0)
	if _, err := b.lockedRead(t, "b", txb, "k"); err == nil {
		t.Error("in-doubt lock was not held")
	}
	b.mon.Abort(txb, "cleanup")
	// ... and stays held: no background resolver exists for this protocol.
	time.Sleep(400 * time.Millisecond)
	if got := b.mon.InDoubt(); len(got) != 1 {
		t.Fatalf("in-doubt set after 400ms = %v, want [%v] still blocked", got, tx)
	}

	// The operator's only recourse (the home node has no recorded
	// disposition to consult) is to force one locally.
	if o, ok := a.mon.Outcome(tx); ok {
		t.Fatalf("home node has outcome %v while its coordinator is dead", o)
	}
	if err := b.mon.ForceDisposition(tx, false); err != nil {
		t.Fatal(err)
	}
	if st := b.mon.State(tx); st != txid.StateAborted {
		t.Errorf("b state after force = %v", st)
	}
	// The insert was backed out and its lock released: a fresh transaction
	// can take the key (this would block if the lock leaked).
	txb2, _ := b.mon.Begin(0)
	if err := b.update(t, "b", txb2, "k", "fresh"); err == nil {
		t.Error("backed-out record still present")
	}
	b.insert(t, "b", txb2, "k", "fresh")
	b.mon.Abort(txb2, "cleanup")

	// The hazard the paper concedes and Paxos Commit removes: when the
	// coordinator comes back it commits, and the operator's blind guess
	// has diverged from the home node's disposition.
	close(park)
	a.mon.SetPhase1Hook(nil)
	if err := <-endErr; err != nil {
		t.Fatalf("resumed End: %v", err)
	}
	oa, _ := a.mon.Outcome(tx)
	ob, _ := b.mon.Outcome(tx)
	if oa != audit.OutcomeCommitted || ob != audit.OutcomeAborted {
		t.Errorf("outcomes a=%v b=%v; this test pins the documented divergence hazard", oa, ob)
	}
}

func TestInDoubtListsOnlyUnresolved(t *testing.T) {
	nodes, _ := testClusterProto(t, ProtoPaxos, 3, "a", "b")
	a, b := nodes["a"], nodes["b"]
	tx, _ := a.mon.Begin(0)
	a.mon.NoteRemoteSend(tx, "b")
	a.insert(t, "b", tx, "k", "v")
	if err := a.mon.End(tx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return b.mon.State(tx) == txid.StateEnded })
	if got := b.mon.InDoubt(); len(got) != 0 {
		t.Errorf("InDoubt after commit = %v, want empty", got)
	}
}
