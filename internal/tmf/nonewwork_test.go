package tmf

import (
	"errors"
	"testing"
	"time"

	"encompass/internal/discproc"
	"encompass/internal/txid"
)

// These tests pin the straggler-rejection behavior added after the chaos
// soak exposed a first-touch race: once a transaction is past the point of
// new work (END started, phase one acknowledged, or abort under way), a
// late data-base operation must be rejected rather than applied and
// orphaned outside the freeze/backout/release snapshots.

func TestRegisterAfterEndRejected(t *testing.T) {
	nodes, _ := testCluster(t, "a")
	a := nodes["a"]
	tx, _ := a.mon.Begin(0)
	a.insert(t, "a", tx, "k", "v")
	if err := a.mon.End(tx); err != nil {
		t.Fatal(err)
	}
	if err := a.mon.RegisterLocalVolume(tx, "v-a"); !errors.Is(err, ErrAborted) {
		t.Errorf("err = %v, want ErrAborted (closed to new work)", err)
	}
}

func TestRegisterAfterAbortRejected(t *testing.T) {
	nodes, _ := testCluster(t, "a")
	a := nodes["a"]
	tx, _ := a.mon.Begin(0)
	a.insert(t, "a", tx, "k", "v")
	a.mon.Abort(tx, "test")
	if err := a.mon.RegisterLocalVolume(tx, "v-a"); !errors.Is(err, ErrAborted) {
		t.Errorf("err = %v, want ErrAborted", err)
	}
}

func TestRegisterUnknownTxRejected(t *testing.T) {
	nodes, _ := testCluster(t, "a")
	a := nodes["a"]
	ghost := txid.ID{Home: "a", CPU: 0, Seq: 999}
	if err := a.mon.RegisterLocalVolume(ghost, "v-a"); !errors.Is(err, ErrUnknownTx) {
		t.Errorf("err = %v, want ErrUnknownTx", err)
	}
}

func TestStragglerOpAfterRemoteAbortRejected(t *testing.T) {
	// The chaos scenario: home aborts a distributed transaction; the
	// non-home node applies the abort while an operation for the same
	// transaction is still on its way. The op must be rejected, not
	// applied — its update would never be undone and its lock never
	// released.
	nodes, _ := testCluster(t, "a", "b")
	a, b := nodes["a"], nodes["b"]

	tx, _ := a.mon.Begin(0)
	if err := a.mon.NoteRemoteSend(tx, "b"); err != nil {
		t.Fatal(err)
	}
	// Home aborts before b ever saw a data operation for the transaction.
	a.mon.Abort(tx, "system abort")
	waitFor(t, func() bool { return b.mon.State(tx) == txid.StateAborted })

	// The straggler op arrives at b now.
	_, err := b.tryCall("b", discproc.KindInsert, discproc.WriteReq{
		Tx: tx, File: "data", Key: "orphan", Val: []byte("x"),
	})
	if err == nil {
		t.Fatal("straggler insert accepted after abort")
	}
	// Nothing applied, no lock held: a fresh transaction can use the key.
	if _, err := b.read(t, "b", "orphan"); err == nil {
		t.Error("orphan record exists")
	}
	tx2, _ := b.mon.Begin(0)
	b.insert(t, "b", tx2, "orphan", "clean")
	if err := b.mon.End(tx2); err != nil {
		t.Errorf("key unusable after straggler rejection: %v", err)
	}
}

func TestStragglerOpDuringCommitRejected(t *testing.T) {
	// Once END-TRANSACTION has begun, a first-touch operation on a new
	// volume must not sneak in after phase one snapshotted participants.
	nodes, _ := testCluster(t, "a")
	a := nodes["a"]
	tx, _ := a.mon.Begin(0)
	a.insert(t, "a", tx, "k", "v")

	// Freeze the commit at the phase-1 hook and try a late op.
	opErr := make(chan error, 1)
	a.mon.SetPhase1Hook(func(txid.ID) {
		_, err := a.tryCall("a", discproc.KindInsert, discproc.WriteReq{
			Tx: tx, File: "data", Key: "late", Val: []byte("x"), LockTimeout: 100 * time.Millisecond,
		})
		opErr <- err
	})
	if err := a.mon.End(tx); err != nil {
		t.Fatal(err)
	}
	a.mon.SetPhase1Hook(nil)
	select {
	case err := <-opErr:
		if err == nil {
			// Acceptable only if the record was part of the committed set;
			// it was a new key, so acceptance would orphan its lock.
			t.Fatal("late op during commit accepted")
		}
	case <-time.After(time.Second):
		t.Fatal("hook op never resolved")
	}
	// The key is free for later use (no orphaned lock).
	tx2, _ := a.mon.Begin(0)
	a.insert(t, "a", tx2, "late", "fresh")
	if err := a.mon.End(tx2); err != nil {
		t.Errorf("key unusable after rejected late op: %v", err)
	}
}
