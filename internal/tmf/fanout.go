package tmf

import "sync"

// fanOut runs fn over items concurrently, at most limit calls in flight
// (limit <= 0 means one goroutine per item; limit == 1 degrades to the
// sequential seed behaviour, kept for the fan-out ablation). It always
// waits for every call to finish before returning — the commit/abort
// protocol holds protoMu across its steps, and the invariant that no
// protocol work outlives the step that issued it depends on this barrier.
// The first error observed is returned; remaining calls still run to
// completion (a phase-one force that already started must not be
// abandoned half-acknowledged).
func fanOut[T any](limit int, items []T, fn func(T) error) error {
	switch {
	case len(items) == 0:
		return nil
	case len(items) == 1:
		return fn(items[0])
	case limit == 1:
		for _, it := range items {
			if err := fn(it); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
		sem   chan struct{}
	)
	if limit > 0 && limit < len(items) {
		sem = make(chan struct{}, limit)
	}
	for _, it := range items {
		wg.Add(1)
		go func(it T) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			if err := fn(it); err != nil {
				mu.Lock()
				if first == nil {
					first = err
				}
				mu.Unlock()
			}
		}(it)
	}
	wg.Wait()
	return first
}
