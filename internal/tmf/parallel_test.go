package tmf

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"encompass/internal/audit"
	"encompass/internal/dbfile"
	"encompass/internal/discproc"
	"encompass/internal/disk"
	"encompass/internal/expand"
	"encompass/internal/hw"
	"encompass/internal/msg"
	"encompass/internal/obs"
	"encompass/internal/txid"
)

// multiVolNode is a node with several audited volumes, each served by its
// own DISCPROCESS and AUDITPROCESS (separate trails, so phase one must
// force each trail independently).
type multiVolNode struct {
	name   string
	hw     *hw.Node
	sys    *msg.System
	mon    *Monitor
	vols   []string
	discs  []string
	trails []*audit.Trail
}

// buildMultiVolNode creates a node with nvols audited volumes whose
// trails carry forceDelay, attached to net, with the given commit fan-out.
func buildMultiVolNode(t *testing.T, net *expand.Network, name string, nvols int, forceDelay time.Duration, fanout int) *multiVolNode {
	t.Helper()
	n, err := hw.NewNode(name, 4)
	if err != nil {
		t.Fatal(err)
	}
	sys := msg.NewSystem(n)
	net.Attach(sys)
	mn := &multiVolNode{name: name, hw: n, sys: sys}
	mn.mon, err = New(Config{System: sys, Network: net, TMPPrimaryCPU: 0, TMPBackupCPU: 1, CommitFanout: fanout})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nvols; i++ {
		volName := fmt.Sprintf("v%d", i)
		discName := fmt.Sprintf("disc%d", i)
		auditName := fmt.Sprintf("audit%d", i)
		trail := audit.NewTrail(auditName, forceDelay)
		if _, err := audit.StartProcess(sys, auditName, i%4, (i+1)%4, trail); err != nil {
			t.Fatal(err)
		}
		vol := disk.NewVolume(volName)
		if _, err := discproc.Start(sys, discName, i%4, (i+1)%4, discproc.Config{
			Volume:        vol,
			Audit:         audit.NewClient(sys, auditName),
			OnParticipate: mn.mon.RegisterLocalVolume,
			CacheSize:     32,
		}); err != nil {
			t.Fatal(err)
		}
		mn.mon.AddVolume(VolumeInfo{Name: volName, DiscName: discName, AuditName: auditName})
		mn.vols = append(mn.vols, volName)
		mn.discs = append(mn.discs, discName)
		mn.trails = append(mn.trails, trail)
		mn.discCall(t, discName, discproc.KindCreate, discproc.CreateReq{File: "data", Org: dbfile.KeySequenced})
	}
	return mn
}

func (mn *multiVolNode) tryDiscCall(disc, kind string, payload any) (msg.Message, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return mn.sys.ClientCall(ctx, 3, msg.Addr{Name: disc}, kind, payload)
}

func (mn *multiVolNode) discCall(t *testing.T, disc, kind string, payload any) msg.Message {
	t.Helper()
	r, err := mn.tryDiscCall(disc, kind, payload)
	if err != nil {
		t.Fatalf("%s %s: %v", disc, kind, err)
	}
	return r
}

// TestParallelPhase1MultiVolume: phase one across N independent trails
// pays roughly one force latency, not the sum — the fan-out runs the
// per-volume flushes concurrently.
func TestParallelPhase1MultiVolume(t *testing.T) {
	const (
		nvols = 8
		delay = 10 * time.Millisecond
	)
	net := expand.NewNetwork(0)
	mn := buildMultiVolNode(t, net, "a", nvols, delay, 0)
	tx, err := mn.mon.Begin(2)
	if err != nil {
		t.Fatal(err)
	}
	for i, disc := range mn.discs {
		mn.discCall(t, disc, discproc.KindInsert, discproc.WriteReq{Tx: tx, File: "data", Key: fmt.Sprintf("k%d", i), Val: []byte("v")})
	}
	start := time.Now()
	if err := mn.mon.End(tx); err != nil {
		t.Fatalf("End: %v", err)
	}
	elapsed := time.Since(start)
	// Sequential phase one would pay >= nvols*delay = 80ms in trail forces
	// alone; the parallel fan-out should land well under that.
	if elapsed >= time.Duration(nvols)*delay*3/4 {
		t.Errorf("parallel commit took %v, want well under the sequential %v", elapsed, time.Duration(nvols)*delay)
	}
	for i, tr := range mn.trails {
		if imgs := tr.ImagesFor(tx); len(imgs) != 1 {
			t.Errorf("trail %d durable images = %d, want 1", i, len(imgs))
		}
	}
	if st := mn.mon.Stats(); st.Committed != 1 || st.Aborted != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestCommitSlowVolumeFailingChild: a commit whose phase one combines a
// slow local volume force with an unreachable child must abort cleanly,
// release local locks, and leave counters agreeing with the Monitor Audit
// Trail.
func TestCommitSlowVolumeFailingChild(t *testing.T) {
	net := expand.NewNetwork(0)
	a := buildMultiVolNode(t, net, "a", 2, 5*time.Millisecond, 0)
	b := buildMultiVolNode(t, net, "b", 1, 0, 0)
	if err := net.AddLink("a", "b"); err != nil {
		t.Fatal(err)
	}
	tx, err := a.mon.Begin(2)
	if err != nil {
		t.Fatal(err)
	}
	a.discCall(t, a.discs[0], discproc.KindInsert, discproc.WriteReq{Tx: tx, File: "data", Key: "k0", Val: []byte("v")})
	a.discCall(t, a.discs[1], discproc.KindInsert, discproc.WriteReq{Tx: tx, File: "data", Key: "k1", Val: []byte("v")})
	if err := a.mon.NoteRemoteSend(tx, "b"); err != nil {
		t.Fatal(err)
	}
	// The child is unreachable at phase one: the critical-response
	// requirement fails while the slow local forces are in flight.
	net.Partition("b")
	err = a.mon.End(tx)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("End with failing child = %v, want ErrAborted", err)
	}
	if st := a.mon.State(tx); st != txid.StateAborted {
		t.Errorf("state = %v, want aborted", st)
	}
	if o, ok := a.mon.Outcome(tx); !ok || o != audit.OutcomeAborted {
		t.Errorf("outcome = %v, %v", o, ok)
	}
	if st := a.mon.Stats(); st.Committed != 0 || st.Aborted != 1 {
		t.Errorf("stats = %+v, want 0 committed / 1 aborted", st)
	}
	// Local locks were released: a fresh transaction can update the keys
	// the aborted one inserted... which were backed out, so re-insert.
	tx2, err := a.mon.Begin(3)
	if err != nil {
		t.Fatal(err)
	}
	a.discCall(t, a.discs[0], discproc.KindInsert, discproc.WriteReq{Tx: tx2, File: "data", Key: "k0", Val: []byte("v2")})
	if err := a.mon.End(tx2); err != nil {
		t.Fatalf("End after aborted predecessor: %v", err)
	}
	_ = b
}

// TestAbortRacingCommit: ABORT-TRANSACTION racing END-TRANSACTION under
// the protocol mutex must produce exactly one recorded outcome per
// transaction, with the committed/aborted counters summing to the
// transaction count (run with -race).
func TestAbortRacingCommit(t *testing.T) {
	const rounds = 16
	net := expand.NewNetwork(0)
	mn := buildMultiVolNode(t, net, "a", 2, time.Millisecond, 0)
	for i := 0; i < rounds; i++ {
		tx, err := mn.mon.Begin(i % 4)
		if err != nil {
			t.Fatal(err)
		}
		mn.discCall(t, mn.discs[0], discproc.KindInsert, discproc.WriteReq{Tx: tx, File: "data", Key: fmt.Sprintf("r%d", i), Val: []byte("v")})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			_ = mn.mon.End(tx)
		}()
		go func() {
			defer wg.Done()
			_ = mn.mon.Abort(tx, "race")
		}()
		wg.Wait()
		if st := mn.mon.State(tx); !st.Terminal() {
			t.Fatalf("round %d: non-terminal state %v", i, st)
		}
		if _, ok := mn.mon.Outcome(tx); !ok {
			t.Fatalf("round %d: no recorded outcome", i)
		}
	}
	st := mn.mon.Stats()
	if st.Committed+st.Aborted != rounds {
		t.Errorf("committed %d + aborted %d = %d, want %d (counters must agree with the MAT)",
			st.Committed, st.Aborted, st.Committed+st.Aborted, rounds)
	}
	if int(mn.mon.MonitorTrail().Len()) != rounds {
		t.Errorf("MAT records = %d, want %d", mn.mon.MonitorTrail().Len(), rounds)
	}
}

// TestReleaseFailureCounted: a volume whose DISCPROCESS cannot be reached
// during phase two is retried and then counted in UnreleasedVolumes
// instead of being silently dropped.
func TestReleaseFailureCounted(t *testing.T) {
	net := expand.NewNetwork(0)
	mn := buildMultiVolNode(t, net, "a", 1, 0, 0)
	// A registered volume whose DISCPROCESS name resolves to nothing:
	// every call to it fails, as with a hung or dead process.
	mn.mon.AddVolume(VolumeInfo{Name: "ghost", DiscName: "no-such-disc"})
	tx, err := mn.mon.Begin(2)
	if err != nil {
		t.Fatal(err)
	}
	mn.discCall(t, mn.discs[0], discproc.KindInsert, discproc.WriteReq{Tx: tx, File: "data", Key: "k", Val: []byte("v")})
	if err := mn.mon.RegisterLocalVolume(tx, "ghost"); err != nil {
		t.Fatal(err)
	}
	// Phase one's flush of the ghost volume fails, aborting the commit;
	// the abort's release path then fails on the same volume.
	if err := mn.mon.End(tx); !errors.Is(err, ErrAborted) {
		t.Fatalf("End = %v, want ErrAborted", err)
	}
	// The registry counter is the source of truth; Stats.UnreleasedVolumes
	// is a thin alias over it.
	if mn.mon.Registry().Counter(obs.MUnreleasedVolumes).Value() == 0 {
		t.Error("unreleased-volumes counter = 0, want the ghost volume counted")
	}
	if st := mn.mon.Stats(); st.Aborted != 1 {
		t.Errorf("aborted = %d, want 1", st.Aborted)
	}
}

// TestBackoutScanFailureSurfaced: when the BACKOUTPROCESS cannot read an
// audit trail, the failure must be retried, counted, and surfaced in the
// abort reason — the seed silently skipped the trail, losing the undo of
// its images.
func TestBackoutScanFailureSurfaced(t *testing.T) {
	net := expand.NewNetwork(0)
	mn := buildMultiVolNode(t, net, "a", 1, 0, 0)
	// A volume claiming an AUDITPROCESS that does not exist: backout's
	// scan of that trail can never succeed.
	mn.mon.AddVolume(VolumeInfo{Name: "ghost", DiscName: mn.discs[0], AuditName: "no-such-audit"})
	tx, err := mn.mon.Begin(2)
	if err != nil {
		t.Fatal(err)
	}
	mn.discCall(t, mn.discs[0], discproc.KindInsert, discproc.WriteReq{Tx: tx, File: "data", Key: "k", Val: []byte("v")})
	if err := mn.mon.RegisterLocalVolume(tx, "ghost"); err != nil {
		t.Fatal(err)
	}
	if err := mn.mon.Abort(tx, "operator abort"); err != nil {
		t.Fatal(err)
	}
	if mn.mon.Registry().Counter(obs.MBackoutScanFailures).Value() == 0 {
		t.Error("backout-scan-failures counter = 0, want the unreadable trail counted")
	}
	reason := mn.mon.AbortReason(tx)
	if !strings.Contains(reason, "backout incomplete") || !strings.Contains(reason, "no-such-audit") {
		t.Errorf("abort reason %q does not surface the failed trail scan", reason)
	}
	// The reachable trail's images were still undone.
	r, err := mn.tryDiscCall(mn.discs[0], discproc.KindRead, discproc.ReadReq{File: "data", Key: "k"})
	if err == nil {
		t.Errorf("key survived backout: %q", r.Payload.(discproc.ReadResp).Val)
	}
}
