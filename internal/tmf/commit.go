package tmf

import (
	"context"
	"fmt"
	"time"

	"encompass/internal/audit"
	"encompass/internal/discproc"
	"encompass/internal/msg"
	"encompass/internal/txid"
)

// protocol timeouts
const (
	volCallTimeout      = 5 * time.Second
	criticalCallTimeout = 5 * time.Second
)

// callVolume issues a request to a volume's DISCPROCESS on this node.
func (m *Monitor) callVolume(vi VolumeInfo, kind string, payload any) error {
	ctx, cancel := context.WithTimeout(context.Background(), volCallTimeout)
	defer cancel()
	_, err := m.sys.ClientCall(ctx, m.tmpCPUOrFirstUp(), msg.Addr{Name: vi.DiscName}, kind, payload)
	return err
}

// lockProto acquires the transaction's protocol mutex, serializing
// commit/abort/phase-one work for this transid on this node.
func (m *Monitor) lockProto(tx txid.ID) (*tcb, error) {
	t, err := m.tcb(tx)
	if err != nil {
		return nil, err
	}
	t.protoMu.Lock()
	return t, nil
}

// End runs END-TRANSACTION: the two-phase commit protocol. It must be
// called on the transaction's home node. On success the transaction is
// durably committed everywhere; on failure it has been aborted and backed
// out, and the caller (typically a TCP) may restart the transaction.
func (m *Monitor) End(tx txid.ID) error {
	t, err := m.lockProto(tx)
	if err != nil {
		return err
	}
	defer t.protoMu.Unlock()
	if !t.isHome {
		return fmt.Errorf("%w: END of %s attempted on %s", ErrNotHome, tx, m.node)
	}
	// A transaction the system already aborted rejects END; the Screen
	// COBOL program is then restarted at BEGIN-TRANSACTION.
	if st := m.State(tx); st != txid.StateActive {
		if st == txid.StateAborting || st == txid.StateAborted {
			return fmt.Errorf("%w: %s (state %s at END)", ErrAborted, tx, st)
		}
		return fmt.Errorf("%w: END of %s in state %s", ErrBadState, tx, st)
	}

	// END-TRANSACTION: the transaction accepts no further data-base work.
	m.closeToNewWork(tx)
	// Phase one: enter "ending", force audit records everywhere.
	m.broadcast(tx, txid.StateEnding)
	err = m.phase1Local(tx)
	if err == nil {
		err = m.phase1Children(tx)
	}
	if err != nil {
		m.abortLocked(tx, fmt.Sprintf("phase one failed: %v", err))
		return fmt.Errorf("%w: %s: phase one failed: %v", ErrAborted, tx, err)
	}
	if hook := m.phase1Hook; hook != nil {
		// Fault-injection point between phase one and the commit record,
		// used by the in-doubt experiments.
		hook(tx)
	}
	// Commit point: the commit record in the Monitor Audit Trail.
	m.mat.Append(tx, audit.OutcomeCommitted)
	m.broadcast(tx, txid.StateEnded)
	m.mu.Lock()
	m.stats.committed++
	m.mu.Unlock()
	// Phase two: release locks locally; safe-delivery to children.
	m.releaseLocal(tx)
	m.safeDeliverChildren(tx, kindEnded)
	return nil
}

// phase1Local forces this node's audit trails for the transaction.
func (m *Monitor) phase1Local(tx txid.ID) error {
	_, _, _, vols, _, err := m.snapshotTx(tx)
	if err != nil {
		return err
	}
	for _, vi := range vols {
		if err := m.callVolume(vi, discproc.KindFlush, discproc.FlushReq{Tx: tx}); err != nil {
			return fmt.Errorf("flush %s: %w", vi.Name, err)
		}
	}
	return nil
}

// phase1Children sends the critical-response phase-one request to every
// node this node directly transmitted the transid to. "For critical
// response messages, the destination TMP must be accessible at the time
// the message is initiated, and it must reply with an affirmative
// response in order for the transaction state change to proceed."
func (m *Monitor) phase1Children(tx txid.ID) error {
	_, _, children, _, _, err := m.snapshotTx(tx)
	if err != nil {
		return err
	}
	for _, child := range children {
		if err := m.tmpCall(child, kindPhase1, tmpReq{Tx: tx}); err != nil {
			return fmt.Errorf("phase one to %s: %w", child, err)
		}
	}
	return nil
}

// releaseLocal tells every participating DISCPROCESS on this node to
// release the transaction's locks (phase two).
func (m *Monitor) releaseLocal(tx txid.ID) {
	_, _, _, vols, _, err := m.snapshotTx(tx)
	if err != nil {
		return
	}
	for _, vi := range vols {
		_ = m.callVolume(vi, discproc.KindEndTx, discproc.EndTxReq{Tx: tx})
	}
}

// freezeLocal marks the transaction ended-for-new-work at every
// participating DISCPROCESS, while its locks stay held. Run before backout
// so no straggler operation can interleave with the undo.
func (m *Monitor) freezeLocal(tx txid.ID) {
	_, _, _, vols, _, err := m.snapshotTx(tx)
	if err != nil {
		return
	}
	for _, vi := range vols {
		_ = m.callVolume(vi, discproc.KindFreeze, discproc.EndTxReq{Tx: tx})
	}
}

// Abort backs out a transaction: voluntary (ABORT-TRANSACTION /
// RESTART-TRANSACTION) or system-initiated. It may be called on the home
// node, or on a non-home node that has not yet acknowledged phase one
// (unilateral abort).
func (m *Monitor) Abort(tx txid.ID, reason string) error {
	t, err := m.lockProto(tx)
	if err != nil {
		return err
	}
	defer t.protoMu.Unlock()
	m.mu.Lock()
	inDoubt := !t.isHome && t.phase1Acked
	m.mu.Unlock()
	if inDoubt {
		// After an affirmative phase-one reply a non-home node must hold
		// the transaction's locks until it learns the disposition.
		return fmt.Errorf("%w: %s", ErrInDoubt, tx)
	}
	if st := m.State(tx); st.Terminal() {
		return nil
	}
	m.abortLocked(tx, reason)
	return nil
}

// abortInternal takes the protocol mutex then aborts; used by watchers.
func (m *Monitor) abortInternal(tx txid.ID, reason string) {
	t, err := m.lockProto(tx)
	if err != nil {
		return
	}
	defer t.protoMu.Unlock()
	m.abortLocked(tx, reason)
}

// abortLocked runs the abort path with the protocol mutex held: state
// "aborting", freeze, backout of local updates via before-images, abort
// record, state "aborted", lock release, safe-delivery of the abort to
// child nodes (each node backs out its own updates from its own trails,
// "without the need for communication with other nodes").
func (m *Monitor) abortLocked(tx txid.ID, reason string) {
	if st := m.State(tx); st == txid.StateAborting || st.Terminal() {
		return
	}
	m.closeToNewWork(tx)
	m.broadcast(tx, txid.StateAborting)
	m.freezeLocal(tx)
	m.backoutLocal(tx)
	m.mat.Append(tx, audit.OutcomeAborted)
	m.broadcast(tx, txid.StateAborted)
	m.mu.Lock()
	m.stats.aborted++
	if t, ok := m.txs[tx]; ok {
		t.abortReason = reason
	}
	m.mu.Unlock()
	m.releaseLocal(tx)
	m.safeDeliverChildren(tx, kindAborting)
}

// backoutLocal is the BACKOUTPROCESS: it collects the transaction's
// before-images from every local audit trail and applies them, newest
// first, through the owning DISCPROCESSes.
func (m *Monitor) backoutLocal(tx txid.ID) {
	_, _, _, vols, _, err := m.snapshotTx(tx)
	if err != nil || len(vols) == 0 {
		return
	}
	m.mu.Lock()
	m.stats.backouts++
	m.mu.Unlock()

	// Scan each distinct audit trail once (volumes may share one).
	cpu := m.tmpCPUOrFirstUp()
	type volImages struct {
		vi     VolumeInfo
		images []audit.Image
	}
	byVol := make(map[string]*volImages)
	for _, vi := range vols {
		byVol[vi.Name] = &volImages{vi: vi}
	}
	scanned := make(map[string]bool)
	for _, vi := range vols {
		if vi.AuditName == "" || scanned[vi.AuditName] {
			continue
		}
		scanned[vi.AuditName] = true
		cl := audit.NewClient(m.sys, vi.AuditName)
		imgs, err := cl.Scan(cpu, tx)
		if err != nil {
			continue
		}
		for _, img := range imgs {
			if v, ok := byVol[img.Volume]; ok {
				v.images = append(v.images, img)
			}
		}
	}
	for _, v := range byVol {
		if len(v.images) == 0 {
			continue
		}
		rev := make([]audit.Image, len(v.images))
		for i, img := range v.images {
			rev[len(v.images)-1-i] = img
		}
		_ = m.callVolume(v.vi, discproc.KindUndo, discproc.UndoReq{Tx: tx, Images: rev})
	}
}

// Outcome reports the transaction's disposition from this node's Monitor
// Audit Trail.
func (m *Monitor) Outcome(tx txid.ID) (audit.Outcome, bool) {
	return m.mat.OutcomeOf(tx)
}

// ForceDisposition is the manual override the paper describes for in-doubt
// transactions on a node severed from the transaction's home: the operator
// determines the disposition on the home node (by telephone, in 1981) and
// forces it locally.
func (m *Monitor) ForceDisposition(tx txid.ID, commit bool) error {
	t, err := m.lockProto(tx)
	if err != nil {
		return err
	}
	defer t.protoMu.Unlock()
	if commit {
		m.applyEndedLocked(tx)
		return nil
	}
	m.mu.Lock()
	t.phase1Acked = false // permit the abort path
	m.mu.Unlock()
	m.abortLocked(tx, "operator forced abort")
	return nil
}

// applyEnded performs the phase-two work on this node for a committed
// transaction and propagates to children via safe-delivery.
func (m *Monitor) applyEnded(tx txid.ID) {
	t, err := m.lockProto(tx)
	if err != nil {
		return
	}
	defer t.protoMu.Unlock()
	m.applyEndedLocked(tx)
}

func (m *Monitor) applyEndedLocked(tx txid.ID) {
	if st := m.State(tx); st == txid.StateEnded {
		return
	}
	m.closeToNewWork(tx)
	m.mat.Append(tx, audit.OutcomeCommitted)
	m.broadcast(tx, txid.StateEnded)
	m.releaseLocal(tx)
	m.safeDeliverChildren(tx, kindEnded)
}

// applyAborting performs the abort on this node at the home node's
// request (safe-delivery) and propagates to children.
func (m *Monitor) applyAborting(tx txid.ID) {
	t, err := m.lockProto(tx)
	if err != nil {
		return
	}
	defer t.protoMu.Unlock()
	m.mu.Lock()
	t.phase1Acked = false
	m.mu.Unlock()
	m.abortLocked(tx, "aborted by home node")
}
