package tmf

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"encompass/internal/audit"
	"encompass/internal/discproc"
	"encompass/internal/msg"
	"encompass/internal/obs"
	"encompass/internal/txid"
)

// protocol timeouts and retry bounds
const (
	volCallTimeout      = 5 * time.Second
	criticalCallTimeout = 5 * time.Second

	// volRetries bounds the retry of best-effort phase-two volume calls
	// (lock release, freeze, undo, backout scans). A transient DISCPROCESS
	// timeout must not leak locks or silently skip a trail's before-images.
	volRetries = 3
	// volRetryBackoff is the linear per-attempt backoff between retries.
	volRetryBackoff = 2 * time.Millisecond
)

// callVolume issues a request to a volume's DISCPROCESS on this node.
func (m *Monitor) callVolume(vi VolumeInfo, kind string, payload any) error {
	ctx, cancel := context.WithTimeout(context.Background(), volCallTimeout)
	defer cancel()
	_, err := m.sys.ClientCall(ctx, m.tmpCPUOrFirstUp(), msg.Addr{Name: vi.DiscName}, kind, payload)
	return err
}

// callVolumeRetry retries a volume call with bounded linear backoff and
// returns the last error if every attempt failed.
func (m *Monitor) callVolumeRetry(vi VolumeInfo, kind string, payload any) error {
	var err error
	for attempt := 0; attempt < volRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * volRetryBackoff)
		}
		if err = m.callVolume(vi, kind, payload); err == nil {
			return nil
		}
	}
	return err
}

// lockProto acquires the transaction's protocol mutex, serializing
// commit/abort/phase-one work for this transid on this node.
func (m *Monitor) lockProto(tx txid.ID) (*tcb, error) {
	t, err := m.tcb(tx)
	if err != nil {
		return nil, err
	}
	t.protoMu.Lock()
	return t, nil
}

// End runs END-TRANSACTION: the two-phase commit protocol. It must be
// called on the transaction's home node. On success the transaction is
// durably committed everywhere; on failure it has been aborted and backed
// out, and the caller (typically a TCP) may restart the transaction.
func (m *Monitor) End(tx txid.ID) error {
	t, err := m.lockProto(tx)
	if err != nil {
		return err
	}
	defer t.protoMu.Unlock()
	if !t.isHome {
		return fmt.Errorf("%w: END of %s attempted on %s", ErrNotHome, tx, m.node)
	}
	// A transaction the system already aborted rejects END; the Screen
	// COBOL program is then restarted at BEGIN-TRANSACTION.
	if st := m.State(tx); st != txid.StateActive {
		if st == txid.StateAborting || st == txid.StateAborted {
			return fmt.Errorf("%w: %s (state %s at END)", ErrAborted, tx, st)
		}
		return fmt.Errorf("%w: END of %s in state %s", ErrBadState, tx, st)
	}
	// A coordinator resuming after a stall must honor an abort the
	// recovery path (or the operator) already recorded: the abort record
	// in the MAT is final, exactly as the commit record is in abortLocked.
	if o, ok := m.mat.OutcomeOf(tx); ok && o == audit.OutcomeAborted {
		return fmt.Errorf("%w: %s (aborted while END was stalled)", ErrAborted, tx)
	}

	// END-TRANSACTION: the transaction accepts no further data-base work.
	m.closeToNewWork(tx)
	// Phase one: enter "ending", force audit records everywhere.
	m.broadcast(tx, txid.StateEnding)
	p1Start := time.Now()
	if err := m.phase1(tx); err != nil {
		m.abortLocked(tx, fmt.Sprintf("phase one failed: %v", err))
		return fmt.Errorf("%w: %s: phase one failed: %v", ErrAborted, tx, err)
	}
	// The home node's own Prepared vote: under Paxos Commit this is the
	// last ballot-0 fast-path accept — after it succeeds, every instance
	// of the transaction is chosen Prepared and no recovery ballot can
	// decide anything but commit.
	if m.protoActive(tx) {
		if err := m.proto.VoteSelf(tx); err != nil {
			m.abortLocked(tx, fmt.Sprintf("disposition vote failed: %v", err))
			return fmt.Errorf("%w: %s: disposition vote failed: %v", ErrAborted, tx, err)
		}
	}
	m.hPhase1.Observe(time.Since(p1Start))
	if hp := m.phase1Hook.Load(); hp != nil {
		// Fault-injection point between phase one and the commit record,
		// used by the in-doubt experiments.
		(*hp)(tx)
	}
	// The disposition decision. Abbreviated 2PC decides by fiat (writing
	// the commit record below IS the decision); the logged protocols run
	// their decide step first and must be obeyed if a recovery ballot got
	// there first with the opposite outcome.
	if m.protoActive(tx) {
		out, err := m.proto.Decide(tx, audit.OutcomeCommitted)
		if err != nil {
			m.abortLocked(tx, fmt.Sprintf("disposition decide failed: %v", err))
			return fmt.Errorf("%w: %s: disposition decide failed: %v", ErrAborted, tx, err)
		}
		if out == audit.OutcomeAborted {
			m.abortLocked(tx, "disposition protocol decided abort")
			return fmt.Errorf("%w: %s: disposition protocol decided abort", ErrAborted, tx)
		}
	}
	// Commit point: the commit record in the Monitor Audit Trail. The
	// committed counter moves with the record (recordOutcome), so Stats
	// agrees with the trail no matter how far phase two has progressed.
	m.recordOutcome(tx, audit.OutcomeCommitted)
	m.broadcast(tx, txid.StateEnded)
	// Phase two: release locks locally; safe-delivery to children.
	p2Start := time.Now()
	m.releaseLocal(tx)
	m.safeDeliverChildren(tx, kindEnded)
	m.hPhase2.Observe(time.Since(p2Start))
	m.observeBeginToEnded(tx)
	return nil
}

// observeBeginToEnded records the begin→terminal latency for a transaction
// whose begin this node witnessed.
func (m *Monitor) observeBeginToEnded(tx txid.ID) {
	m.mu.Lock()
	t, ok := m.txs[tx]
	var begin time.Time
	if ok {
		begin = t.beginAt
	}
	m.mu.Unlock()
	if !begin.IsZero() {
		m.hBeginToEnded.Observe(time.Since(begin))
	}
}

// recordOutcome writes the transaction's completion record to the Monitor
// Audit Trail and bumps the matching counter only when the record is new,
// so the committed/aborted counters always equal the trail's contents.
// (End previously counted committed before phase two ran, and applyEnded
// recorded the outcome without counting at all.)
func (m *Monitor) recordOutcome(tx txid.ID, o audit.Outcome) {
	got, isNew := m.mat.Append(tx, o)
	if !isNew || got != o {
		return
	}
	switch o {
	case audit.OutcomeCommitted:
		m.cCommitted.Inc()
	case audit.OutcomeAborted:
		m.cAborted.Inc()
	}
	m.tracer.Record(obs.Event{Tx: tx, Kind: obs.EvOutcome, Node: m.node,
		CPU: m.tmpCPUOrFirstUp(), Detail: o.String()})
}

// phase1 runs both halves of phase one — forcing this node's audit trails
// and the critical-response request to child nodes — in parallel. Both
// must succeed for the commit to proceed; the first error wins. With
// CommitFanout == 1 the halves run sequentially, reproducing the seed's
// latency for the ablation benchmark.
func (m *Monitor) phase1(tx txid.ID) error {
	if m.fanout == 1 {
		if err := m.phase1Local(tx); err != nil {
			return err
		}
		return m.phase1Children(tx)
	}
	errc := make(chan error, 2)
	go func() { errc <- m.phase1Local(tx) }()
	go func() { errc <- m.phase1Children(tx) }()
	err := <-errc
	if e := <-errc; err == nil {
		err = e
	}
	return err
}

// phase1Local forces this node's audit trails for the transaction, one
// concurrent flush per participating volume (each flush blocks for the
// trail's simulated disc-force latency, so the sequential seed paid the
// sum of the forces; the fan-out pays the max, and flushes that share a
// trail are coalesced by the trail's group commit).
func (m *Monitor) phase1Local(tx txid.ID) error {
	_, _, _, vols, _, err := m.snapshotTx(tx)
	if err != nil {
		return err
	}
	return fanOut(m.fanout, vols, func(vi VolumeInfo) error {
		start := time.Now()
		err := m.callVolume(vi, discproc.KindFlush, discproc.FlushReq{Tx: tx})
		ev := obs.Event{Tx: tx, Kind: obs.EvForce, Node: m.node,
			CPU: m.tmpCPUOrFirstUp(), Dur: time.Since(start), Detail: vi.Name}
		if err != nil {
			ev.Err = err.Error()
		}
		m.tracer.Record(ev)
		if err != nil {
			return fmt.Errorf("flush %s: %w", vi.Name, err)
		}
		return nil
	})
}

// phase1Children sends the critical-response phase-one request to every
// node this node directly transmitted the transid to, in parallel. "For
// critical response messages, the destination TMP must be accessible at
// the time the message is initiated, and it must reply with an affirmative
// response in order for the transaction state change to proceed." Children
// are independent subtrees of the transmission tree, so their phase-one
// work (which recurses to their own children) proceeds concurrently.
func (m *Monitor) phase1Children(tx txid.ID) error {
	_, _, children, _, _, err := m.snapshotTx(tx)
	if err != nil {
		return err
	}
	return fanOut(m.fanout, children, func(child string) error {
		if err := m.tmpCall(child, kindPhase1, tmpReq{Tx: tx}); err != nil {
			return fmt.Errorf("phase one to %s: %w", child, err)
		}
		return nil
	})
}

// releaseLocal tells every participating DISCPROCESS on this node to
// release the transaction's locks (phase two), in parallel and with
// bounded retry: the seed discarded these errors, so one transient
// DISCPROCESS timeout leaked the transaction's locks on that volume until
// manual intervention. A volume that still fails after the retries is
// counted in Stats.UnreleasedVolumes.
func (m *Monitor) releaseLocal(tx txid.ID) {
	_, _, _, vols, _, err := m.snapshotTx(tx)
	if err != nil {
		return
	}
	_ = fanOut(m.fanout, vols, func(vi VolumeInfo) error {
		start := time.Now()
		err := m.callVolumeRetry(vi, discproc.KindEndTx, discproc.EndTxReq{Tx: tx})
		ev := obs.Event{Tx: tx, Kind: obs.EvPhase2Release, Node: m.node,
			CPU: m.tmpCPUOrFirstUp(), Dur: time.Since(start), Detail: vi.Name}
		if err != nil {
			ev.Err = err.Error()
			m.cUnreleased.Inc()
		}
		m.tracer.Record(ev)
		return nil
	})
}

// freezeLocal marks the transaction ended-for-new-work at every
// participating DISCPROCESS, while its locks stay held. Run before backout
// so no straggler operation can interleave with the undo. Freezes fan out
// in parallel with bounded retry.
func (m *Monitor) freezeLocal(tx txid.ID) {
	_, _, _, vols, _, err := m.snapshotTx(tx)
	if err != nil {
		return
	}
	_ = fanOut(m.fanout, vols, func(vi VolumeInfo) error {
		_ = m.callVolumeRetry(vi, discproc.KindFreeze, discproc.EndTxReq{Tx: tx})
		return nil
	})
}

// Abort backs out a transaction: voluntary (ABORT-TRANSACTION /
// RESTART-TRANSACTION) or system-initiated. It may be called on the home
// node, or on a non-home node that has not yet acknowledged phase one
// (unilateral abort).
func (m *Monitor) Abort(tx txid.ID, reason string) error {
	t, err := m.lockProto(tx)
	if err != nil {
		return err
	}
	defer t.protoMu.Unlock()
	m.mu.Lock()
	inDoubt := !t.isHome && t.phase1Acked
	m.mu.Unlock()
	if inDoubt {
		// After an affirmative phase-one reply a non-home node must hold
		// the transaction's locks until it learns the disposition.
		return fmt.Errorf("%w: %s", ErrInDoubt, tx)
	}
	if st := m.State(tx); st.Terminal() {
		return nil
	}
	m.abortLocked(tx, reason)
	return nil
}

// abortInternal takes the protocol mutex then aborts; used by watchers.
func (m *Monitor) abortInternal(tx txid.ID, reason string) {
	t, err := m.lockProto(tx)
	if err != nil {
		return
	}
	defer t.protoMu.Unlock()
	m.abortLocked(tx, reason)
}

// abortLocked runs the abort path with the protocol mutex held: state
// "aborting", freeze, backout of local updates via before-images, abort
// record, state "aborted", lock release, safe-delivery of the abort to
// child nodes (each node backs out its own updates from its own trails,
// "without the need for communication with other nodes"). A backout that
// could not read every trail or apply every undo is surfaced in the
// recorded abort reason rather than dropped.
func (m *Monitor) abortLocked(tx txid.ID, reason string) {
	if st := m.State(tx); st == txid.StateAborting || st.Terminal() {
		return
	}
	// The commit record in the Monitor Audit Trail is the commit point: a
	// transaction whose commit record exists can never be backed out, no
	// matter what the volatile state tables claim (a replica on a reloaded
	// processor may be stale and report the transaction unknown).
	if o, ok := m.mat.OutcomeOf(tx); ok && o == audit.OutcomeCommitted {
		return
	}
	// A home-node abort of a transaction that entered a logged disposition
	// protocol must run the protocol's decide step: a recovery ballot may
	// already have chosen Commit (every participant's vote landed before
	// the coordinator stalled), in which case aborting here would diverge
	// from what the rest of the network has learned. An unreachable
	// decision quorum falls through to the local abort — availability over
	// waiting, matching the paper's manual-override semantics — with the
	// failure recorded in the abort reason.
	m.mu.Lock()
	tt, known := m.txs[tx]
	decideViaProto := known && tt.isHome && tt.protoBegun
	m.mu.Unlock()
	if decideViaProto {
		if out, derr := m.proto.Decide(tx, audit.OutcomeAborted); derr == nil && out == audit.OutcomeCommitted {
			m.applyEndedLocked(tx)
			return
		} else if derr != nil {
			reason = fmt.Sprintf("%s (decision quorum unavailable: %v)", reason, derr)
		}
	}
	m.closeToNewWork(tx)
	m.broadcast(tx, txid.StateAborting)
	m.freezeLocal(tx)
	if boErr := m.backoutLocal(tx); boErr != nil {
		reason = fmt.Sprintf("%s; backout incomplete: %v", reason, boErr)
	}
	m.recordOutcome(tx, audit.OutcomeAborted)
	m.broadcast(tx, txid.StateAborted)
	m.mu.Lock()
	if t, ok := m.txs[tx]; ok {
		t.abortReason = reason
	}
	m.mu.Unlock()
	m.releaseLocal(tx)
	m.safeDeliverChildren(tx, kindAborting)
}

// AbortReason returns the reason recorded when tx was aborted on this
// node (empty if the transaction is unknown or was not aborted).
func (m *Monitor) AbortReason(tx txid.ID) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t, ok := m.txs[tx]; ok {
		return t.abortReason
	}
	return ""
}

// backoutLocal is the BACKOUTPROCESS: it collects the transaction's
// before-images from every local audit trail and applies them, newest
// first, through the owning DISCPROCESSes. Trail scans are retried with
// bounded backoff; a trail that still cannot be read is counted in
// Stats.BackoutScanFailures and reported to the caller — the seed
// silently skipped such a trail, leaving its images un-undone. Per-volume
// undo sends fan out in parallel (volumes are independent; each applies
// its own images in reverse LSN order), best-effort with every failure
// collected into the returned error.
func (m *Monitor) backoutLocal(tx txid.ID) error {
	_, _, _, vols, _, err := m.snapshotTx(tx)
	if err != nil || len(vols) == 0 {
		return nil
	}
	m.cBackouts.Inc()
	backoutStart := time.Now()
	defer func() { m.hBackout.Observe(time.Since(backoutStart)) }()

	// Scan each distinct audit trail once (volumes may share one).
	cpu := m.tmpCPUOrFirstUp()
	type volImages struct {
		vi     VolumeInfo
		images []audit.Image
	}
	byVol := make(map[string]*volImages)
	for _, vi := range vols {
		byVol[vi.Name] = &volImages{vi: vi}
	}
	var trailNames []string
	scanned := make(map[string]bool)
	for _, vi := range vols {
		if vi.AuditName == "" || scanned[vi.AuditName] {
			continue
		}
		scanned[vi.AuditName] = true
		trailNames = append(trailNames, vi.AuditName)
	}
	sort.Strings(trailNames)

	var errs []error
	for _, trail := range trailNames {
		cl := audit.NewClient(m.sys, trail)
		var imgs []audit.Image
		var scanErr error
		scanStart := time.Now()
		for attempt := 0; attempt < volRetries; attempt++ {
			if attempt > 0 {
				time.Sleep(time.Duration(attempt) * volRetryBackoff)
			}
			if imgs, scanErr = cl.Scan(cpu, tx); scanErr == nil {
				break
			}
		}
		ev := obs.Event{Tx: tx, Kind: obs.EvBackoutScan, Node: m.node, CPU: cpu,
			Dur: time.Since(scanStart), Detail: trail}
		if scanErr != nil {
			ev.Err = scanErr.Error()
		}
		m.tracer.Record(ev)
		if scanErr != nil {
			m.cScanFails.Inc()
			errs = append(errs, fmt.Errorf("scan of trail %s failed: %w", trail, scanErr))
			continue
		}
		for _, img := range imgs {
			if v, ok := byVol[img.Volume]; ok {
				v.images = append(v.images, img)
			}
		}
	}

	var targets []*volImages
	for _, v := range byVol {
		if len(v.images) > 0 {
			targets = append(targets, v)
		}
	}
	undoErr := fanOut(m.fanout, targets, func(v *volImages) error {
		rev := make([]audit.Image, len(v.images))
		for i, img := range v.images {
			rev[len(v.images)-1-i] = img
		}
		start := time.Now()
		err := m.callVolumeRetry(v.vi, discproc.KindUndo, discproc.UndoReq{Tx: tx, Images: rev})
		ev := obs.Event{Tx: tx, Kind: obs.EvUndoSend, Node: m.node, CPU: cpu,
			Dur: time.Since(start), Detail: fmt.Sprintf("%s (%d images)", v.vi.Name, len(rev))}
		if err != nil {
			ev.Err = err.Error()
		}
		m.tracer.Record(ev)
		if err != nil {
			return fmt.Errorf("undo on %s: %w", v.vi.Name, err)
		}
		return nil
	})
	if undoErr != nil {
		errs = append(errs, undoErr)
	}
	if len(errs) == 0 {
		return nil
	}
	parts := make([]string, len(errs))
	for i, e := range errs {
		parts[i] = e.Error()
	}
	return errors.New(strings.Join(parts, "; "))
}

// Outcome reports the transaction's disposition from this node's Monitor
// Audit Trail.
func (m *Monitor) Outcome(tx txid.ID) (audit.Outcome, bool) {
	return m.mat.OutcomeOf(tx)
}

// ForceDisposition is the manual override the paper describes for in-doubt
// transactions on a node severed from the transaction's home: the operator
// determines the disposition on the home node (by telephone, in 1981) and
// forces it locally.
func (m *Monitor) ForceDisposition(tx txid.ID, commit bool) error {
	t, err := m.lockProto(tx)
	if err != nil {
		return err
	}
	defer t.protoMu.Unlock()
	if commit {
		m.applyEndedLocked(tx)
		return nil
	}
	m.mu.Lock()
	t.phase1Acked = false // permit the abort path
	m.mu.Unlock()
	m.abortLocked(tx, "operator forced abort")
	return nil
}

// applyEnded performs the phase-two work on this node for a committed
// transaction and propagates to children via safe-delivery.
func (m *Monitor) applyEnded(tx txid.ID) {
	t, err := m.lockProto(tx)
	if err != nil {
		return
	}
	defer t.protoMu.Unlock()
	m.applyEndedLocked(tx)
}

func (m *Monitor) applyEndedLocked(tx txid.ID) {
	if st := m.State(tx); st == txid.StateEnded {
		return
	}
	m.closeToNewWork(tx)
	m.recordOutcome(tx, audit.OutcomeCommitted)
	m.broadcast(tx, txid.StateEnded)
	p2Start := time.Now()
	m.releaseLocal(tx)
	m.safeDeliverChildren(tx, kindEnded)
	m.hPhase2.Observe(time.Since(p2Start))
	m.observeBeginToEnded(tx)
}

// applyAborting performs the abort on this node at the home node's
// request (safe-delivery) and propagates to children.
func (m *Monitor) applyAborting(tx txid.ID) {
	t, err := m.lockProto(tx)
	if err != nil {
		return
	}
	defer t.protoMu.Unlock()
	m.mu.Lock()
	t.phase1Acked = false
	m.mu.Unlock()
	m.abortLocked(tx, "aborted by home node")
}
