// Package tmf implements the Transaction Monitoring Facility, the paper's
// primary contribution: continuous, fault-tolerant transaction processing
// in a decentralized, distributed environment.
//
// Each node runs a Monitor holding:
//
//   - per-CPU transaction state tables, updated by broadcasting every state
//     change over the interprocessor bus to all processors of the node
//     ("this is done regardless of which processors actually participated
//     in the transaction");
//   - the Monitor Audit Trail of commit/abort records — writing the commit
//     record is the commit point;
//   - the Transaction Monitor Process (TMP) pair, which coordinates
//     distributed transactions with TMPs on other nodes using
//     critical-response messages (remote begin, phase one) and
//     safe-delivery messages (phase two, abort);
//   - the BACKOUTPROCESS, which reverses an aborting transaction's updates
//     using before-images from the audit trails.
//
// Single-node transactions use the paper's abbreviated two-phase commit:
// phase one forces the audit trails, the commit record is written, phase
// two releases locks. Distributed transactions add TMP-to-TMP voting with
// unilateral-abort rights until a node has acknowledged phase one.
package tmf

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"encompass/internal/audit"
	"encompass/internal/expand"
	"encompass/internal/hw"
	"encompass/internal/msg"
	"encompass/internal/obs"
	"encompass/internal/paxoscommit"
	"encompass/internal/txid"
)

// Errors reported by TMF.
var (
	ErrUnknownTx       = errors.New("tmf: unknown transaction")
	ErrNotHome         = errors.New("tmf: operation only valid on the transaction's home node")
	ErrAborted         = errors.New("tmf: transaction aborted")
	ErrBadState        = errors.New("tmf: invalid state transition")
	ErrNodeUnreachable = errors.New("tmf: participating node unreachable")
	ErrInDoubt         = errors.New("tmf: transaction in doubt (phase one acknowledged, disposition unknown)")
)

// VolumeInfo wires one audited volume into TMF: the DISCPROCESS serving it
// and the AUDITPROCESS that writes its trail.
type VolumeInfo struct {
	Name      string
	DiscName  string
	AuditName string // empty = unaudited volume
}

// Transition is one observed state change, recorded for the Figure 3
// conformance experiment.
type Transition struct {
	Tx       txid.ID
	From, To txid.State
}

// tcb is the per-transaction control block.
type tcb struct {
	id     txid.ID
	isHome bool
	source string // node that first transmitted the transid to us (non-home)

	children  map[string]bool // guarded by Monitor.mu; nodes we directly transmitted the transid to
	localVols map[string]bool // guarded by Monitor.mu; participating volumes on this node

	phase1Acked bool // guarded by Monitor.mu; non-home: we replied affirmatively to phase one
	// protoBegun: the transaction entered the disposition protocol on this
	// node (its instances are registered with the decision infrastructure).
	// Never set under the abbreviated protocol. Guarded by Monitor.mu.
	protoBegun  bool
	abortReason string // guarded by Monitor.mu

	// beginAt anchors the begin→ENDED latency histogram.
	beginAt time.Time

	// noNewWork closes the transaction to further data-base operations:
	// set when END-TRANSACTION starts, when phase one is processed, and at
	// the top of the abort path. The DISCPROCESS participation check
	// consults it under the same mutex that the protocol's participant
	// snapshots use, so an operation either lands before the snapshot
	// (and is frozen, backed out and released with the rest) or is
	// rejected — never applied and then orphaned. Guarded by Monitor.mu.
	noNewWork bool

	// protoMu serializes the commit/abort protocol for this transaction on
	// this node: END-TRANSACTION, system abort, inbound phase one and the
	// safe-delivery appliers are mutually exclusive, so a failure-initiated
	// abort can never interleave with a commit in progress. Holding it
	// across TMP calls is safe because the transmission graph is a tree
	// (remote-begin reports "already known", so a node gains exactly one
	// parent) and protocol calls only flow parent → child.
	protoMu sync.Mutex
}

// Stats counts TMF activity on a node. Every field except SafeQueueDepth
// is a thin alias over the node's obs.Registry counters (the single source
// of truth); new code should read the registry directly via
// Monitor.Registry() and the obs.M* metric names.
type Stats struct {
	Begun         uint64
	Committed     uint64
	Aborted       uint64
	Backouts      uint64
	BroadcastMsgs uint64
	// UnreleasedVolumes counts volumes whose phase-two lock release still
	// failed after bounded retry (locks leaked until operator action).
	UnreleasedVolumes uint64
	// BackoutScanFailures counts audit-trail scans the BACKOUTPROCESS
	// could not complete after bounded retry (backout incomplete).
	BackoutScanFailures uint64
	SafeQueueDepth      int
}

// Monitor is the per-node TMF instance.
type Monitor struct {
	sys  *msg.System
	node string
	net  *expand.Network // nil on an un-networked node
	mat  *audit.MonitorTrail

	mu      sync.Mutex
	txs     map[txid.ID]*tcb      // guarded by mu
	seq     map[int]uint64        // guarded by mu; per-CPU BEGIN sequence numbers
	volumes map[string]VolumeInfo // guarded by mu

	// tabMu guards the per-CPU replicated state tables and, under the
	// piggyback knob, the pending set of deferred 'active' replications.
	tabMu   sync.Mutex
	tables  []map[txid.ID]txid.State // guarded by tabMu
	pending map[txid.ID]txid.State   // guarded by tabMu

	// piggyback defers the BEGIN 'active' table broadcast so it rides the
	// transaction's next state-change frame (END or abort) as one
	// TransferBatch per CPU — short transactions pay one bus arbitration
	// per processor instead of two or more. Off (the default) reproduces
	// the seed's broadcast-per-transition behaviour.
	piggyback bool

	// transitions is the Figure 3 conformance log.
	trMu        sync.Mutex
	transitions []Transition // guarded by trMu
	violations  []Transition // guarded by trMu

	// safe-delivery queue per destination node, with a self-arming
	// bounded-backoff retry so queued messages don't wait for a topology
	// event that may never come (e.g. a lossy-but-up link).
	sqMu         sync.Mutex
	safeQueue    map[string][]safeMsg // guarded by sqMu
	sqRetryArmed bool                 // guarded by sqMu
	sqRetryDelay time.Duration        // guarded by sqMu

	// Observability: the registry is the single source of truth for
	// activity counters (Stats is a thin alias view), the tracer captures
	// per-transaction lifecycle events, and the checker validates every
	// state-change broadcast against Figure 3 at emission time.
	reg     *obs.Registry
	tracer  *obs.Tracer
	checker *obs.StateMachineChecker

	// Pre-resolved metric handles (hot path: no map lookups per event).
	cBegun, cCommitted, cAborted, cBackouts   *obs.Counter
	cBroadcast, cUnreleased, cScanFails       *obs.Counter
	cSafeRetries                              *obs.Counter
	cStateViolations                          *obs.Counter
	hBeginToEnded, hPhase1, hPhase2, hBackout *obs.Histogram

	// fanout bounds concurrent protocol calls per commit/abort step
	// (0 = one goroutine per participant, 1 = sequential).
	fanout int

	tmpPair *tmpApp
	tmpCPU  func() int

	// proto is the pluggable disposition protocol (abbreviated 2PC, full
	// presumed-nothing 2PC, or Paxos Commit); acceptors is the node's
	// commit-acceptor set under Paxos (nil otherwise).
	proto     DispositionProtocol
	acceptors *paxoscommit.AcceptorSet

	// watchMu guards the set of armed in-doubt watchers (one per
	// unresolved transaction under a non-blocking protocol).
	watchMu  sync.Mutex
	watchers map[txid.ID]bool // guarded by watchMu

	// phase1Hook, when set, runs between a successful phase one and the
	// write of the commit record; fault-injection experiments use it to
	// create in-doubt participants. Atomic: DST schedules install and
	// clear one-shot hooks while commits are in flight.
	phase1Hook atomic.Pointer[func(txid.ID)]
}

// SetPhase1Hook installs a fault-injection hook that runs after phase one
// succeeds and before the commit record is written. Experiments use it to
// partition the network at the in-doubt window. Passing nil clears it.
func (m *Monitor) SetPhase1Hook(fn func(txid.ID)) {
	if fn == nil {
		m.phase1Hook.Store(nil)
		return
	}
	m.phase1Hook.Store(&fn)
}

// Config configures a Monitor.
type Config struct {
	System *msg.System
	// Network is the EXPAND network; nil for a standalone node.
	Network *expand.Network
	// MonitorTrailForceDelay simulates the commit-record force latency.
	MonitorTrailForceDelay time.Duration
	// MonitorTrail, when non-nil, reuses an existing Monitor Audit Trail —
	// the durable completion history survives total node failure and a
	// recovering node's fresh Monitor must see it.
	MonitorTrail *audit.MonitorTrail
	// TMPPrimaryCPU / TMPBackupCPU host the TMP pair.
	TMPPrimaryCPU, TMPBackupCPU int
	// CommitFanout bounds how many concurrent calls each step of the
	// commit/abort protocol issues (phase-one flushes and child requests,
	// phase-two releases, freezes and undo sends). 0 means one goroutine
	// per participant; 1 reproduces the sequential seed behaviour and is
	// kept for the fan-out ablation benchmark.
	CommitFanout int
	// Registry receives the monitor's activity counters and per-phase
	// latency histograms; nil creates a private registry (Stats and
	// Registry() still work).
	Registry *obs.Registry
	// Tracer, when non-nil, captures per-transaction lifecycle traces.
	// The facade shares one tracer across the monitor and the node's
	// DISCPROCESSes so a transaction's trace interleaves both sides.
	Tracer *obs.Tracer
	// StrictStateCheck turns the Figure 3 checker into a runtime
	// assertion: an illegal state-change broadcast panics at emission.
	// Violations are always counted and retained either way.
	StrictStateCheck bool
	// CommitProtocol selects the disposition protocol for distributed
	// transactions: ProtoAbbreviated (default — the paper's abbreviated
	// 2PC, byte-identical to the seed), ProtoFull2PC (presumed-nothing
	// 2PC with per-node decision logs), or ProtoPaxos (Paxos Commit:
	// non-blocking under F acceptor/coordinator failures).
	CommitProtocol string
	// CommitAcceptors is the Paxos Commit acceptor count, 2F+1 (odd;
	// 0 means 3, tolerating one failure). One acceptor process runs per
	// configured CPU of the home node (slot i on CPU i mod NumCPUs).
	CommitAcceptors int
	// PiggybackBroadcasts defers the BEGIN 'active' state-table broadcast
	// and piggybacks it on the transaction's next state-change frame (the
	// END or abort broadcast), one batched transfer per CPU. Transition
	// logging, tracing and the Figure 3 checker still see every transition
	// at emission time, and Monitor.State falls back to the pending set,
	// so only physical bus traffic changes. False (the default) is the
	// seed's one-frame-per-transition behaviour.
	PiggybackBroadcasts bool
}

// New creates and starts the node's TMF monitor, including its TMP pair.
func New(cfg Config) (*Monitor, error) {
	node := cfg.System.Node()
	mat := cfg.MonitorTrail
	if mat == nil {
		mat = audit.NewMonitorTrail(cfg.MonitorTrailForceDelay)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Monitor{
		sys:       cfg.System,
		node:      node.Name(),
		net:       cfg.Network,
		mat:       mat,
		txs:       make(map[txid.ID]*tcb),
		seq:       make(map[int]uint64),
		volumes:   make(map[string]VolumeInfo),
		safeQueue: make(map[string][]safeMsg),
		tables:    make([]map[txid.ID]txid.State, node.NumCPUs()),
		pending:   make(map[txid.ID]txid.State),
		piggyback: cfg.PiggybackBroadcasts,
		fanout:    cfg.CommitFanout,
		reg:       reg,
		tracer:    cfg.Tracer,
		checker:   obs.NewStateMachineChecker(cfg.StrictStateCheck),

		cBegun:           reg.Counter(obs.MBegun),
		cCommitted:       reg.Counter(obs.MCommitted),
		cAborted:         reg.Counter(obs.MAborted),
		cBackouts:        reg.Counter(obs.MBackouts),
		cBroadcast:       reg.Counter(obs.MBroadcasts),
		cUnreleased:      reg.Counter(obs.MUnreleasedVolumes),
		cScanFails:       reg.Counter(obs.MBackoutScanFailures),
		cSafeRetries:     reg.Counter(obs.MSafeRetries),
		cStateViolations: reg.Counter(obs.MStateViolations),
		hBeginToEnded:    reg.Histogram(obs.MBeginToEnded),
		hPhase1:          reg.Histogram(obs.MPhaseOne),
		hPhase2:          reg.Histogram(obs.MPhaseTwo),
		hBackout:         reg.Histogram(obs.MBackout),
	}
	for i := range m.tables {
		m.tables[i] = make(map[txid.ID]txid.State)
	}
	// When reusing a Monitor Audit Trail after total node failure, resume
	// per-CPU sequence numbers past everything the trail has seen, so a
	// recovered node never re-issues a pre-crash transid.
	if cfg.MonitorTrail != nil {
		for _, rec := range mat.Records() {
			if rec.Tx.Home == m.node && rec.Tx.Seq > m.seq[rec.Tx.CPU] {
				m.seq[rec.Tx.CPU] = rec.Tx.Seq
			}
		}
	}
	proto, err := newProtocol(m, cfg.CommitProtocol, cfg.CommitAcceptors)
	if err != nil {
		return nil, err
	}
	m.proto = proto
	if err := m.startTMP(cfg.TMPPrimaryCPU, cfg.TMPBackupCPU); err != nil {
		return nil, err
	}
	if m.net != nil {
		m.net.WatchTopology(m.onTopologyChange)
	}
	node.Watch(m.onHWEvent)
	return m, nil
}

// Node returns the node name.
func (m *Monitor) Node() string { return m.node }

// MonitorTrail exposes the node's Monitor Audit Trail (used by
// ROLLFORWARD and the tmfctl utility).
func (m *Monitor) MonitorTrail() *audit.MonitorTrail { return m.mat }

// AddVolume registers an audited volume with TMF.
func (m *Monitor) AddVolume(v VolumeInfo) {
	m.mu.Lock()
	m.volumes[v.Name] = v
	m.mu.Unlock()
}

// Volumes returns the registered volumes.
func (m *Monitor) Volumes() []VolumeInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]VolumeInfo, 0, len(m.volumes))
	for _, v := range m.volumes {
		out = append(out, v)
	}
	return out
}

// Begin starts a transaction whose BEGIN-TRANSACTION ran on the given CPU
// of this (home) node. The transid is broadcast in "active" state to every
// processor of the node.
func (m *Monitor) Begin(cpu int) (txid.ID, error) {
	c, err := m.sys.Node().CPU(cpu)
	if err != nil {
		return txid.ID{}, err
	}
	if !c.Up() {
		return txid.ID{}, fmt.Errorf("%w: cpu %d", hw.ErrCPUDown, cpu)
	}
	m.mu.Lock()
	m.seq[cpu]++
	id := txid.ID{Home: m.node, CPU: cpu, Seq: m.seq[cpu]}
	m.txs[id] = &tcb{
		id:        id,
		isHome:    true,
		children:  make(map[string]bool),
		localVols: make(map[string]bool),
		beginAt:   time.Now(),
	}
	m.mu.Unlock()
	m.cBegun.Inc()
	m.tracer.Record(obs.Event{Tx: id, Kind: obs.EvBegin, Node: m.node, CPU: cpu})
	m.broadcast(id, txid.StateActive)
	return id, nil
}

// beginRemote installs a transaction transmitted to us from another node.
// It reports whether the transid was already known here — in which case
// the sender is NOT this node's parent in the transmission tree and must
// not treat it as a child for the commit protocol.
//
// The handler is idempotent under duplicate delivery, and the dedup is
// source-aware: a retransmitted begin from the node already recorded as
// our parent re-acks "not already known", because answering a duplicate
// with alreadyKnown=true would make the parent drop us from its child
// set — orphaning our applied updates from the commit protocol. Only a
// begin from a *different* node reports the transid as known. A late
// duplicate arriving after the transaction resolved and was forgotten is
// acknowledged without resurrecting a control block.
func (m *Monitor) beginRemote(id txid.ID, source string) (alreadyKnown bool) {
	m.mu.Lock()
	if t, ok := m.txs[id]; ok {
		dupFromParent := !t.isHome && t.source == source
		m.mu.Unlock()
		return !dupFromParent
	}
	if _, resolved := m.mat.OutcomeOf(id); resolved {
		// The transid already ran to completion here (then left the
		// system); a stale retransmitted begin must not bring it back.
		m.mu.Unlock()
		return true
	}
	m.txs[id] = &tcb{
		id:        id,
		source:    source,
		children:  make(map[string]bool),
		localVols: make(map[string]bool),
		beginAt:   time.Now(),
	}
	m.mu.Unlock()
	m.tracer.Record(obs.Event{Tx: id, Kind: obs.EvBegin, Node: m.node,
		CPU: m.tmpCPUOrFirstUp(), Detail: "remote from " + source})
	m.broadcast(id, txid.StateActive)
	return false
}

// RegisterLocalVolume records that tx touched a volume on this node. The
// facade wires it to every DISCPROCESS's OnParticipate callback. It fails
// once the transaction is closed to new work (END in progress, phase one
// acknowledged, or abort under way), so no operation can slip in after the
// protocol snapshotted the participant set.
func (m *Monitor) RegisterLocalVolume(tx txid.ID, volume string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.txs[tx]
	if !ok {
		return fmt.Errorf("%w: %s on %s", ErrUnknownTx, tx, m.node)
	}
	if t.noNewWork {
		return fmt.Errorf("%w: %s is past the point of new work", ErrAborted, tx)
	}
	t.localVols[volume] = true
	return nil
}

// closeToNewWork marks the transaction closed for further operations.
func (m *Monitor) closeToNewWork(tx txid.ID) {
	m.mu.Lock()
	if t, ok := m.txs[tx]; ok {
		t.noNewWork = true
	}
	m.mu.Unlock()
}

// State returns the transaction's state as replicated on the
// lowest-numbered up CPU of the node. A transaction whose 'active'
// broadcast is deferred under the piggyback knob reads as active here —
// the logical state machine is knob-independent.
func (m *Monitor) State(tx txid.ID) txid.State {
	m.tabMu.Lock()
	defer m.tabMu.Unlock()
	return m.stateLocked(tx)
}

// stateLocked is State with tabMu already held: the replica of the
// lowest-numbered up CPU, falling back to the pending deferred-broadcast
// set. Internal sweeps (unreachable-participant and CPU-down aborts) use
// it so piggybacked transactions don't dodge them.
func (m *Monitor) stateLocked(tx txid.ID) txid.State {
	up := m.sys.Node().UpCPUs()
	if len(up) == 0 {
		return txid.StateNone
	}
	if st := m.tables[up[0]][tx]; st != txid.StateNone {
		return st
	}
	return m.pending[tx]
}

// StateOnCPU returns the state replica held by one CPU's table.
func (m *Monitor) StateOnCPU(tx txid.ID, cpu int) txid.State {
	m.tabMu.Lock()
	defer m.tabMu.Unlock()
	if cpu < 0 || cpu >= len(m.tables) {
		return txid.StateNone
	}
	return m.tables[cpu][tx]
}

// broadcast delivers a state change to every processor of the node over
// the interprocessor bus, recording the transition for the Figure 3 log.
func (m *Monitor) broadcast(tx txid.ID, to txid.State) {
	from := m.State(tx)
	m.trMu.Lock()
	tr := Transition{Tx: tx, From: from, To: to}
	m.transitions = append(m.transitions, tr)
	if !from.CanTransition(to) {
		m.violations = append(m.violations, tr)
		m.cStateViolations.Inc()
	}
	m.trMu.Unlock()

	srcCPU := m.tmpCPUOrFirstUp()
	m.tracer.Record(obs.Event{Tx: tx, Kind: obs.EvState, From: from, To: to,
		Node: m.node, CPU: srcCPU})
	// Runtime Figure 3 assertion: panics here in strict mode, at the exact
	// point the illegal broadcast is emitted.
	_ = m.checker.Observe(m.node, tx, from, to)

	node := m.sys.Node()
	if m.piggyback && to == txid.StateActive {
		// Defer the table replication: the 'active' entry rides the
		// transaction's next state-change frame. The transition was logged,
		// traced and checked above, so observability is unchanged; reads go
		// through stateLocked, which consults the pending set.
		m.tabMu.Lock()
		m.pending[tx] = to
		m.tabMu.Unlock()
		return
	}
	count := 1
	m.tabMu.Lock()
	if _, deferred := m.pending[tx]; deferred {
		delete(m.pending, tx)
		count = 2 // the deferred 'active' rides this frame
	}
	m.tabMu.Unlock()
	for _, cpu := range node.UpCPUs() {
		cpu := cpu
		err := node.TransferBatch(srcCPU, cpu, count, func() {
			m.tabMu.Lock()
			if to.Terminal() {
				// "Once the 'ended'/'aborted' state has completed, the
				// transid leaves the system." We keep terminal states in
				// the table briefly for observability; Forget clears them.
				m.tables[cpu][tx] = to
			} else {
				m.tables[cpu][tx] = to
			}
			m.tabMu.Unlock()
		})
		if err == nil {
			m.cBroadcast.Inc()
		}
	}
}

// reseedTable brings a just-revived CPU's transaction state table current
// by copying the replica of a CPU that stayed up. A reloaded processor
// missed every broadcast while it was down; until it is reseeded its empty
// table would claim StateNone for transactions the rest of the node knows
// are ended — and anything consulting the lowest-numbered up CPU (State,
// the operator's stuck-transaction sweep) would mistake committed work for
// never-begun work and back it out.
func (m *Monitor) reseedTable(cpu int) {
	var donor = -1
	for _, up := range m.sys.Node().UpCPUs() {
		if up != cpu {
			donor = up
			break
		}
	}
	// The bounds checks read len(m.tables) and so belong under tabMu with
	// the copy; reseeding is a revival-only path, never hot.
	m.tabMu.Lock()
	defer m.tabMu.Unlock()
	if cpu < 0 || cpu >= len(m.tables) {
		return
	}
	if donor < 0 || donor >= len(m.tables) {
		return // total node failure: nothing survives to copy (ROLLFORWARD path)
	}
	fresh := make(map[txid.ID]txid.State, len(m.tables[donor]))
	for tx, st := range m.tables[donor] {
		//lint:allow statetrans reseeding copies a surviving replica verbatim; no Figure-3 edge is taken, so there is nothing for the transition log to see
		fresh[tx] = st
	}
	m.tables[cpu] = fresh
}

// Forget removes a terminal transaction's replicated state ("the transid
// leaves the system").
func (m *Monitor) Forget(tx txid.ID) {
	m.tabMu.Lock()
	for _, tab := range m.tables {
		if tab[tx].Terminal() {
			delete(tab, tx)
		}
	}
	delete(m.pending, tx)
	m.tabMu.Unlock()
	m.mu.Lock()
	delete(m.txs, tx)
	m.mu.Unlock()
}

// Transitions returns the observed state-transition log and the subset
// that violated Figure 3 (expected empty).
func (m *Monitor) Transitions() (all, violations []Transition) {
	m.trMu.Lock()
	defer m.trMu.Unlock()
	return append([]Transition(nil), m.transitions...), append([]Transition(nil), m.violations...)
}

// Stats returns activity counters: an alias view over the obs registry,
// kept for existing callers.
func (m *Monitor) Stats() Stats {
	s := Stats{
		Begun:               m.cBegun.Value(),
		Committed:           m.cCommitted.Value(),
		Aborted:             m.cAborted.Value(),
		Backouts:            m.cBackouts.Value(),
		BroadcastMsgs:       m.cBroadcast.Value(),
		UnreleasedVolumes:   m.cUnreleased.Value(),
		BackoutScanFailures: m.cScanFails.Value(),
	}
	m.sqMu.Lock()
	for _, q := range m.safeQueue {
		s.SafeQueueDepth += len(q)
	}
	m.sqMu.Unlock()
	return s
}

// Registry exposes the monitor's metrics registry.
func (m *Monitor) Registry() *obs.Registry { return m.reg }

// Tracer exposes the monitor's lifecycle tracer (nil when tracing is off).
func (m *Monitor) Tracer() *obs.Tracer { return m.tracer }

// Checker exposes the runtime Figure 3 checker.
func (m *Monitor) Checker() *obs.StateMachineChecker { return m.checker }

func (m *Monitor) tmpCPUOrFirstUp() int {
	if m.tmpCPU != nil {
		if cpu := m.tmpCPU(); cpu >= 0 {
			return cpu
		}
	}
	up := m.sys.Node().UpCPUs()
	if len(up) > 0 {
		return up[0]
	}
	return 0
}

func (m *Monitor) tcb(tx txid.ID) (*tcb, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.txs[tx]
	if !ok {
		return nil, fmt.Errorf("%w: %s on %s", ErrUnknownTx, tx, m.node)
	}
	return t, nil
}

// snapshotTx copies the fields needed by protocol steps without holding
// the monitor lock across network calls.
func (m *Monitor) snapshotTx(tx txid.ID) (isHome bool, source string, children []string, vols []VolumeInfo, phase1Acked bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.txs[tx]
	if !ok {
		return false, "", nil, nil, false, fmt.Errorf("%w: %s on %s", ErrUnknownTx, tx, m.node)
	}
	for c := range t.children {
		children = append(children, c)
	}
	for v := range t.localVols {
		if vi, ok := m.volumes[v]; ok {
			vols = append(vols, vi)
		}
	}
	return t.isHome, t.source, children, vols, t.phase1Acked, nil
}
