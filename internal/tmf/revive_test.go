package tmf

import (
	"testing"

	"encompass/internal/audit"
	"encompass/internal/txid"
)

// Regression tests for the stale-state-table bug flushed out by the DST
// explorer (corpus entry seed1-stale-state-table): a transaction that
// commits while a CPU is down is broadcast only to the CPUs that are up.
// When the downed CPU reloads, its replicated state table must be brought
// current — and, independently, the commit record in the MAT must make
// backout impossible no matter what the volatile tables claim.

func TestRevivedCPUStateTableReseeded(t *testing.T) {
	nodes, _ := testCluster(t, "a")
	a := nodes["a"]

	// CPU 0 is down for the whole transaction: every state broadcast
	// misses it. CPU 0 is also the lowest-numbered CPU, so after a reload
	// Monitor.State consults *its* replica first.
	a.hw.FailCPU(0)

	tx, err := a.mon.Begin(2)
	if err != nil {
		t.Fatal(err)
	}
	a.insert(t, "a", tx, "k", "v")
	if err := a.mon.End(tx); err != nil {
		t.Fatalf("End: %v", err)
	}
	if st := a.mon.StateOnCPU(tx, 0); st != txid.StateNone {
		t.Fatalf("downed CPU somehow received broadcasts: state = %v", st)
	}

	a.hw.ReviveCPU(0)
	waitFor(t, func() bool { return a.mon.StateOnCPU(tx, 0) == txid.StateEnded })
	if st := a.mon.State(tx); st != txid.StateEnded {
		t.Fatalf("State after reload = %v, want Ended (stale replica consulted)", st)
	}

	// The operator's stuck-transaction sweep aborts anything non-terminal.
	// With a truthful table this is a no-op; before the fix it saw
	// StateNone and backed out the committed transaction.
	a.mon.Abort(tx, "end-of-run sweep")
	if o, ok := a.mon.Outcome(tx); !ok || o != audit.OutcomeCommitted {
		t.Fatalf("outcome after sweep = %v, %v; committed work was backed out", o, ok)
	}
	if v, err := a.read(t, "a", "k"); err != nil || v != "v" {
		t.Fatalf("read after sweep = %q, %v; committed write lost", v, err)
	}
}

func TestCommitRecordBlocksBackout(t *testing.T) {
	// Commit while CPU 0 is down, then lose the remaining CPUs before CPU
	// 0 reloads: no surviving replica can reseed the tables, so the
	// transaction is genuinely unknown to the volatile state. The MAT
	// still has its commit record — "writing the commit record is the
	// commit point" — so abort must refuse.
	nodes, _ := testCluster(t, "a")
	a := nodes["a"]

	a.hw.FailCPU(0)
	tx, err := a.mon.Begin(2)
	if err != nil {
		t.Fatal(err)
	}
	a.insert(t, "a", tx, "k", "v")
	if err := a.mon.End(tx); err != nil {
		t.Fatalf("End: %v", err)
	}

	// Total node failure: the replicas that saw the commit are gone.
	for cpu := 1; cpu < 4; cpu++ {
		a.hw.FailCPU(cpu)
	}
	for cpu := 0; cpu < 4; cpu++ {
		a.hw.ReviveCPU(cpu)
	}
	waitFor(t, func() bool { return a.mon.State(tx) == txid.StateNone })

	a.mon.Abort(tx, "operator sweep after total node failure")
	if o, ok := a.mon.Outcome(tx); !ok || o != audit.OutcomeCommitted {
		t.Fatalf("outcome = %v, %v; abort overrode the commit point", o, ok)
	}
	if a.mon.State(tx) == txid.StateAborting {
		t.Fatal("abort proceeded past the MAT commit-record guard")
	}
}
